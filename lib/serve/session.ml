(** Live session (see the interface).  Concurrency design:

    - every shard is a monitor: its mutex guards the queue, the
      lifecycle stage and the engine state, with [not_full] /
      [not_empty] condition variables for backpressure and drain;
    - tickets are tiny monitors of their own, signalled exactly once;
      a shard mutex may be held while signalling a ticket, never the
      reverse, so the lock graph is acyclic;
    - the session-level mutex only serialises lifecycle transitions
      ([close] / [shutdown_now]) and is never held across a shard
      lock acquisition that could block on engine work. *)

open Ccache_trace
module Engine = Ccache_sim.Engine
module Policy = Ccache_sim.Policy

exception Closed
exception Cancelled

type outcome = Hit | Miss

type tk_state = Pending | Done of outcome | Discarded

type ticket = {
  tk_mu : Mutex.t;
  tk_cond : Condition.t;
  mutable tk_state : tk_state;
}

type stage = Open | Drain | Abort

type shard_rt = {
  sh : Shard.t;
  last : outcome ref;  (** written by the engine's [on_event] in [feed] *)
  mu : Mutex.t;
  not_full : Condition.t;
  not_empty : Condition.t;
  queue : (Page.t * ticket) Queue.t;
  mutable st : stage;
  mutable sh_waiters : int;
}

type t = {
  shards : shard_rt array;
  router : Router.t;
  batch : int;
  queue_cap : int;
  use_workers : bool;
  mutable workers : unit Domain.t list;
  t_mu : Mutex.t;
  mutable live : bool;
}

(* Requires [s.mu]; processes up to [batch] requests FIFO and wakes
   blocked submitters. *)
let process_locked s batch =
  let n = min batch (Queue.length s.queue) in
  for _ = 1 to n do
    let page, tk = Queue.pop s.queue in
    Shard.feed s.sh page;
    let oc = !(s.last) in
    Mutex.lock tk.tk_mu;
    tk.tk_state <- Done oc;
    Condition.broadcast tk.tk_cond;
    Mutex.unlock tk.tk_mu
  done;
  if n > 0 then Condition.broadcast s.not_full;
  n

let worker_loop s batch =
  Mutex.lock s.mu;
  let rec loop () =
    match s.st with
    | Abort -> ()
    | Drain when Queue.is_empty s.queue -> ()
    | _ ->
        if Queue.is_empty s.queue then begin
          Condition.wait s.not_empty s.mu;
          loop ()
        end
        else begin
          ignore (process_locked s batch);
          loop ()
        end
  in
  loop ();
  Mutex.unlock s.mu

let create ?(policy = Ccache_core.Alg_fast.policy) ?(workers = false) ~router
    ~shard_k ~batch ~queue_cap ~costs () =
  if shard_k <= 0 then invalid_arg "Session.create: shard_k must be positive";
  if batch <= 0 then invalid_arg "Session.create: batch must be positive";
  if queue_cap <= 0 then
    invalid_arg "Session.create: queue_cap must be positive";
  if Array.length costs = 0 then
    invalid_arg "Session.create: costs must be non-empty";
  if Policy.needs_future policy then
    invalid_arg
      (Printf.sprintf "Session.create: offline policy %s cannot serve"
         (Policy.name policy));
  let n_users = Array.length costs in
  let shards =
    Array.init (Router.shards router) (fun id ->
        let last = ref Hit in
        let on_event = function
          | Engine.Hit _ -> last := Hit
          | Engine.Miss_insert _ | Engine.Miss_evict _ -> last := Miss
        in
        {
          sh =
            Shard.create_dynamic ~on_event ~id ~k:shard_k ~costs ~policy
              ~n_users ();
          last;
          mu = Mutex.create ();
          not_full = Condition.create ();
          not_empty = Condition.create ();
          queue = Queue.create ();
          st = Open;
          sh_waiters = 0;
        })
  in
  let t =
    {
      shards;
      router;
      batch;
      queue_cap;
      use_workers = workers;
      workers = [];
      t_mu = Mutex.create ();
      live = true;
    }
  in
  if workers then
    t.workers <-
      Array.to_list
        (Array.map (fun s -> Domain.spawn (fun () -> worker_loop s batch)) shards);
  t

let new_ticket () =
  { tk_mu = Mutex.create (); tk_cond = Condition.create (); tk_state = Pending }

let submit t page =
  let s = t.shards.(Router.route t.router page) in
  let tk = new_ticket () in
  Mutex.lock s.mu;
  let rec wait_space () =
    if s.st <> Open then begin
      Mutex.unlock s.mu;
      raise Closed
    end
    else if Queue.length s.queue >= t.queue_cap then begin
      s.sh_waiters <- s.sh_waiters + 1;
      Condition.wait s.not_full s.mu;
      s.sh_waiters <- s.sh_waiters - 1;
      wait_space ()
    end
  in
  wait_space ();
  Queue.push (page, tk) s.queue;
  Condition.signal s.not_empty;
  Mutex.unlock s.mu;
  tk

let try_submit t page =
  let s = t.shards.(Router.route t.router page) in
  Mutex.lock s.mu;
  if s.st <> Open then begin
    Mutex.unlock s.mu;
    raise Closed
  end
  else if Queue.length s.queue >= t.queue_cap then begin
    Mutex.unlock s.mu;
    Error `Overloaded
  end
  else begin
    let tk = new_ticket () in
    Queue.push (page, tk) s.queue;
    Condition.signal s.not_empty;
    Mutex.unlock s.mu;
    Ok tk
  end

let wait tk =
  Mutex.lock tk.tk_mu;
  while tk.tk_state = Pending do
    Condition.wait tk.tk_cond tk.tk_mu
  done;
  let st = tk.tk_state in
  Mutex.unlock tk.tk_mu;
  match st with
  | Done oc -> oc
  | Discarded -> raise Cancelled
  | Pending -> assert false

let poll tk =
  Mutex.lock tk.tk_mu;
  let st = tk.tk_state in
  Mutex.unlock tk.tk_mu;
  match st with
  | Pending -> None
  | Done oc -> Some oc
  | Discarded -> raise Cancelled

let drain t ~shard =
  if t.use_workers then
    invalid_arg "Session.drain: session drains through worker domains";
  if shard < 0 || shard >= Array.length t.shards then
    invalid_arg "Session.drain: no such shard";
  let s = t.shards.(shard) in
  Mutex.lock s.mu;
  if s.st <> Open then begin
    Mutex.unlock s.mu;
    raise Closed
  end;
  let n = process_locked s t.batch in
  Mutex.unlock s.mu;
  n

let drain_all t =
  let total = ref 0 in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    Array.iteri
      (fun i _ ->
        let n = drain t ~shard:i in
        if n > 0 then begin
          total := !total + n;
          progressed := true
        end)
      t.shards
  done;
  !total

let sum_over_shards t f =
  Array.fold_left
    (fun acc s ->
      Mutex.lock s.mu;
      let v = f s in
      Mutex.unlock s.mu;
      acc + v)
    0 t.shards

let pending t = sum_over_shards t (fun s -> Queue.length s.queue)
let waiters t = sum_over_shards t (fun s -> s.sh_waiters)
let served t = sum_over_shards t (fun s -> Shard.served s.sh)

(* Lifecycle.  [begin_transition] consumes the single Live token; only
   the caller that wins it may join workers and finish engines. *)
let begin_transition t =
  Mutex.lock t.t_mu;
  let was_live = t.live in
  t.live <- false;
  Mutex.unlock t.t_mu;
  was_live

let wake_all s =
  Condition.broadcast s.not_empty;
  Condition.broadcast s.not_full

let close t =
  if not (begin_transition t) then raise Closed;
  Array.iter
    (fun s ->
      Mutex.lock s.mu;
      s.st <- Drain;
      wake_all s;
      Mutex.unlock s.mu)
    t.shards;
  List.iter Domain.join t.workers;
  if not t.use_workers then
    Array.iter
      (fun s ->
        Mutex.lock s.mu;
        while not (Queue.is_empty s.queue) do
          ignore (process_locked s t.batch)
        done;
        Mutex.unlock s.mu)
      t.shards;
  Array.map
    (fun s ->
      Mutex.lock s.mu;
      let r = Shard.finish s.sh in
      Mutex.unlock s.mu;
      r)
    t.shards

let shutdown_now t =
  if begin_transition t then begin
    Array.iter
      (fun s ->
        Mutex.lock s.mu;
        s.st <- Abort;
        while not (Queue.is_empty s.queue) do
          let _page, tk = Queue.pop s.queue in
          Mutex.lock tk.tk_mu;
          tk.tk_state <- Discarded;
          Condition.broadcast tk.tk_cond;
          Mutex.unlock tk.tk_mu
        done;
        wake_all s;
        Mutex.unlock s.mu)
      t.shards;
    List.iter Domain.join t.workers
  end
