(** The sharded cache service, replay form: schedule, execute, merge.

    [run] is the whole pipeline: {!Scheduler.clients_of_trace} deals
    the recorded trace over the configured clients,
    {!Scheduler.build} derives the deterministic round schedule, every
    shard replays its schedule through its own engine
    ({!Shard.run_schedule}) — on [?pool]'s worker domains when given —
    and the per-shard results are merged into service-level
    accounting: summed per-user miss counts, total convex cost
    [sum_i f_i(m_i)] over the {e merged} counts, and logical
    throughput (admitted requests per round).

    Because the schedule is engine-free and the shard executions are
    independent, the result is a pure function of
    [(config, costs, trace)]: byte-identical at every [--jobs] width,
    with or without observability recording, and across
    record/replay.  Observability for the service itself (queue
    depths, waits, per-shard engine counters) is recorded {e after}
    the merge, on the calling domain, in shard order — so the metrics
    export is width-independent too.

    [run_supervised] is the fault-tolerant variant: one
    {!Ccache_util.Supervisor} task per shard (ids ["shard/<i>"]),
    engine results checkpointed through {!engine_codec} so a killed
    run resumes bit-for-bit ({!fingerprint} guards the snapshot
    against configuration drift). *)

open Ccache_trace

type config = {
  sched : Scheduler.config;
  shard_k : int;  (** cache capacity of each shard *)
  policy : Ccache_sim.Policy.t;
  clients : int;  (** client streams the trace is dealt over *)
}

val config :
  ?policy:Ccache_sim.Policy.t ->
  ?clients:int ->
  ?overload:Scheduler.overload ->
  ?client_rate:int ->
  ?batch:int ->
  ?queue_cap:int ->
  router:Router.t ->
  shard_k:int ->
  unit ->
  config
(** Defaults: [Alg_fast.policy ()], [clients = 1], [Block],
    [client_rate = 1], [batch = 8], [queue_cap = 64].
    @raise Invalid_argument on a non-positive parameter or an offline
    (future-peeking) policy, which cannot serve. *)

type result = {
  r_config : config;
  schedule : Scheduler.t;  (** admission outcome: rounds, queues, drops *)
  engines : Ccache_sim.Engine.result array;  (** indexed by shard *)
  misses_per_user : int array;  (** summed across shards *)
  hits : int;
  total_cost : float;
      (** [sum_i f_i(misses_per_user.(i))] over the merged counts *)
  throughput : float;  (** admitted requests per logical round *)
}

val requests : result -> int
(** Total client requests = admitted + rejected. *)

val misses : result -> int

val plan : config -> Trace.t -> Scheduler.t
(** The admission schedule [run] executes: [clients_of_trace] +
    [build].  Exposed for tests and for the CLI's dry summary. *)

val run :
  ?pool:Ccache_util.Domain_pool.t ->
  config ->
  costs:Ccache_cost.Cost_function.t array ->
  Trace.t ->
  result
(** Serve the whole trace.  @raise Invalid_argument if [costs] has not
    exactly one entry per trace user (shards re-validate their
    sub-traces), or via {!Scheduler.build} / {!Shard.create}. *)

(** {1 Supervised execution} *)

val shard_task_id : int -> string
(** ["shard/<i>"] — the supervisor task id of shard [i], the name
    {!Ccache_util.Fault.kill} targets in fault-injection tests. *)

val engine_codec : Ccache_sim.Engine.result Ccache_util.Supervisor.codec
(** Single-line, exact (all-integer) codec for checkpointed shard
    results; [decode] returns [None] on malformed payloads, forcing
    recomputation. *)

val fingerprint :
  config -> costs:Ccache_cost.Cost_function.t array -> Trace.t -> string
(** Single-line digest of everything a shard result depends on —
    routing, knobs, policy, cost-function names, and a hash of the
    packed request sequence — used as the {!Ccache_util.Checkpoint}
    fingerprint so a snapshot can only replay into the run shape that
    wrote it. *)

type supervised = {
  outcome : result option;
      (** [Some] iff every shard completed (or replayed) *)
  failures : Ccache_util.Supervisor.failure list;
  replayed : string list;  (** task ids served from the checkpoint *)
}

val run_supervised :
  ?pool:Ccache_util.Domain_pool.t ->
  ?policy:Ccache_util.Supervisor.policy ->
  ?fault:Ccache_util.Fault.t ->
  ?checkpoint:Ccache_util.Checkpoint.t ->
  ?on_event:(Ccache_util.Supervisor.event -> unit) ->
  config ->
  costs:Ccache_cost.Cost_function.t array ->
  Trace.t ->
  supervised
(** {!run} with one supervised task per shard.  Quarantined shards
    leave [outcome = None] (a partial merge would misreport costs);
    completed shards' payloads are still flushed to [?checkpoint], so
    a follow-up run replays them and only re-executes the failed
    shards.  Service-level obs is recorded only when the merge
    happens. *)
