(** Logical-clock admission scheduler (see the interface for the round
    semantics).  Everything here is plain bookkeeping over queues of
    [(page, submit_round)] pairs; the engines never run under this
    module, so the schedule cannot depend on cache contents. *)

open Ccache_trace

type overload = Block | Reject

let overload_name = function Block -> "block" | Reject -> "reject"

type config = {
  router : Router.t;
  batch : int;
  queue_cap : int;
  overload : overload;
  client_rate : int;
}

let config ?(overload = Block) ?(client_rate = 1) ~router ~batch ~queue_cap () =
  if batch <= 0 then invalid_arg "Scheduler.config: batch must be positive";
  if queue_cap <= 0 then
    invalid_arg "Scheduler.config: queue_cap must be positive";
  if client_rate <= 0 then
    invalid_arg "Scheduler.config: client_rate must be positive";
  { router; batch; queue_cap; overload; client_rate }

type shard_schedule = {
  shard : int;
  pages : Page.t array;
  batches : (int * int) array;
  waits : int array;
  rejected : int;
  max_depth : int;
  depth_sum : int;
}

type t = {
  config : config;
  rounds : int;
  shards : shard_schedule array;
  admitted : int;
  rejected : int;
  stalls : int;
}

(* Mutable per-shard state during the simulation.  Queues hold
   [(page, submit_round)]; drained requests accumulate in reverse. *)
type shard_state = {
  queue : (Page.t * int) Queue.t;
  mutable drained : Page.t list;
  mutable drained_waits : int list;
  mutable drained_count : int;
  mutable batch_log : (int * int) list;
  mutable s_rejected : int;
  mutable s_max_depth : int;
  mutable s_depth_sum : int;
}

let build config ~clients =
  let n_shards = Router.shards config.router in
  let shards =
    Array.init n_shards (fun _ ->
        {
          queue = Queue.create ();
          drained = [];
          drained_waits = [];
          drained_count = 0;
          batch_log = [];
          s_rejected = 0;
          s_max_depth = 0;
          s_depth_sum = 0;
        })
  in
  let n_clients = Array.length clients in
  let cursors = Array.make n_clients 0 in
  let admitted = ref 0 in
  let rejected = ref 0 in
  let stalls = ref 0 in
  let remaining_clients () =
    let any = ref false in
    Array.iteri
      (fun c cur -> if cur < Array.length clients.(c) then any := true)
      cursors;
    !any
  in
  let queued () =
    Array.exists (fun s -> not (Queue.is_empty s.queue)) shards
  in
  let round = ref 0 in
  while remaining_clients () || queued () do
    (* admission phase: clients in id order, up to [client_rate] each *)
    for c = 0 to n_clients - 1 do
      let stream = clients.(c) in
      let budget = ref config.client_rate in
      let stalled = ref false in
      while (not !stalled) && !budget > 0 && cursors.(c) < Array.length stream
      do
        let page = stream.(cursors.(c)) in
        let s = shards.(Router.route config.router page) in
        if Queue.length s.queue < config.queue_cap then begin
          Queue.push (page, !round) s.queue;
          incr admitted;
          if Queue.length s.queue > s.s_max_depth then
            s.s_max_depth <- Queue.length s.queue;
          cursors.(c) <- cursors.(c) + 1;
          decr budget
        end
        else
          match config.overload with
          | Block ->
              (* head-of-line: the client keeps this request and gives
                 up on the rest of its round *)
              stalled := true;
              incr stalls
          | Reject ->
              s.s_rejected <- s.s_rejected + 1;
              incr rejected;
              cursors.(c) <- cursors.(c) + 1;
              decr budget
      done
    done;
    (* drain phase: up to [batch] per shard, FIFO *)
    Array.iter
      (fun s ->
        let n = min config.batch (Queue.length s.queue) in
        if n > 0 then begin
          for _ = 1 to n do
            let page, submitted = Queue.pop s.queue in
            s.drained <- page :: s.drained;
            s.drained_waits <- (!round - submitted) :: s.drained_waits;
            s.drained_count <- s.drained_count + 1
          done;
          s.batch_log <- (!round, n) :: s.batch_log
        end;
        s.s_depth_sum <- s.s_depth_sum + Queue.length s.queue)
      shards;
    incr round
  done;
  let shards =
    Array.mapi
      (fun i s ->
        {
          shard = i;
          pages = Array.of_list (List.rev s.drained);
          batches = Array.of_list (List.rev s.batch_log);
          waits = Array.of_list (List.rev s.drained_waits);
          rejected = s.s_rejected;
          max_depth = s.s_max_depth;
          depth_sum = s.s_depth_sum;
        })
      shards
  in
  {
    config;
    rounds = !round;
    shards;
    admitted = !admitted;
    rejected = !rejected;
    stalls = !stalls;
  }

let clients_of_trace ~clients trace =
  if clients <= 0 then
    invalid_arg "Scheduler.clients_of_trace: clients must be positive";
  let len = Trace.length trace in
  let streams = Array.make clients [] in
  for pos = len - 1 downto 0 do
    let c = pos mod clients in
    streams.(c) <- Trace.request trace pos :: streams.(c)
  done;
  Array.map Array.of_list streams
