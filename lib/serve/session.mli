(** The sharded cache service, live form: a concurrent front door.

    Where {!Service} replays a recorded trace under the logical clock,
    a session accepts requests {e as they arrive} from any number of
    client domains.  Each shard owns a bounded FIFO queue of
    [(page, ticket)] pairs and a dynamic engine state
    ({!Shard.create_dynamic}); clients {!submit} (blocking while the
    shard's queue is full — the [Block] backpressure of the scheduler,
    realised with a condition variable) or {!try_submit} (returning
    [Error `Overloaded] instead — the [Reject] mode), then {!wait} on
    the ticket for the hit/miss outcome.

    Two drain modes:
    - {b manual} (default): nothing runs until someone calls {!drain}
      / {!drain_all}.  Queue contents between calls are exact, which
      is what the backpressure unit tests rely on.
    - {b workers} ([~workers:true]): one dedicated domain per shard
      drains batches as they arrive.  Engine state is only ever
      touched under the shard's mutex, and all within-shard
      processing is FIFO, so per-shard request order — and therefore
      each shard's engine result — is exactly the submission order
      even in this mode.

    Lock order (deadlock freedom): a shard mutex may be held while
    taking a ticket mutex, never the reverse; the session lifecycle
    mutex is never held while taking either. *)

open Ccache_trace

exception Closed
(** Raised by [submit]/[try_submit]/[drain] after {!close} or
    {!shutdown_now}, and by a second lifecycle call. *)

exception Cancelled
(** Raised by {!wait}/{!poll} on a ticket whose request was discarded
    by {!shutdown_now} — pending work fails loudly, it never hangs. *)

type t
type ticket

type outcome = Hit | Miss

val create :
  ?policy:Ccache_sim.Policy.t ->
  ?workers:bool ->
  router:Router.t ->
  shard_k:int ->
  batch:int ->
  queue_cap:int ->
  costs:Ccache_cost.Cost_function.t array ->
  unit ->
  t
(** A live session with one shard per [Router.shards router], each
    with a [shard_k]-page cache; [Array.length costs] fixes the user
    universe.  Defaults: [Alg_fast.policy], manual drain.
    @raise Invalid_argument on non-positive parameters or an offline
    policy. *)

val submit : t -> Page.t -> ticket
(** Enqueue on the page's shard, blocking while that queue is full.
    @raise Closed if the session is closed (including while blocked). *)

val try_submit : t -> Page.t -> (ticket, [ `Overloaded ]) result
(** Non-blocking [submit]: [Error `Overloaded] on a full queue.
    @raise Closed as [submit]. *)

val wait : ticket -> outcome
(** Block until the request was processed.  @raise Cancelled if it was
    discarded by {!shutdown_now}. *)

val poll : ticket -> outcome option
(** Non-blocking [wait]. @raise Cancelled as [wait]. *)

val drain : t -> shard:int -> int
(** Manual mode only: process up to [batch] queued requests on one
    shard, FIFO; returns the number processed.
    @raise Invalid_argument in workers mode or on a bad shard index.
    @raise Closed after close. *)

val drain_all : t -> int
(** Repeated {!drain} sweeps over all shards until every queue is
    empty; returns the total processed. *)

val pending : t -> int
(** Queued (not yet processed) requests across all shards. *)

val waiters : t -> int
(** Clients currently blocked in {!submit} — the test hook that lets
    backpressure tests observe blocking deterministically. *)

val served : t -> int
(** Requests processed across all shards. *)

val close : t -> Ccache_sim.Engine.result array
(** Graceful shutdown: stop admitting ([submit] raises [Closed]),
    drain every queue (workers finish and are joined; manual mode
    drains inline), and return the per-shard engine results, indexed
    by shard.  Call once.  @raise Closed on a second lifecycle call. *)

val shutdown_now : t -> unit
(** Abortive shutdown: discard every queued request, failing its
    ticket with {!Cancelled}; requests already processed keep their
    outcomes.  Idempotent after any lifecycle call. *)
