(** Logical-clock admission scheduler: the deterministic time base of
    the serving layer.

    Time advances in {e rounds}.  Each round has two phases:

    + {b admission} — clients, visited in client-id order, each emit up
      to [client_rate] requests from their streams.  A request is
      routed ({!Router.route}) and enqueued on its shard's FIFO queue
      if the queue holds fewer than [queue_cap] entries.  On a full
      queue the configured backpressure applies: [Block] stalls the
      client (it retries the {e same} request next round — head-of-line
      blocking, nothing is ever dropped); [Reject] drops the request,
      counts it as overloaded, and lets the client continue.
    + {b drain} — every shard dequeues up to [batch] requests, in FIFO
      order, forming that round's batch.

    The schedule — which request reaches which shard in which batch —
    is therefore a pure function of [(config, clients)]: no wall
    clock, no thread interleaving, no engine feedback (a drain slot
    costs the same whether the request hits or misses).  That purity
    is what the rest of the layer leans on: {!Service} replays batches
    through per-shard engines {e in parallel} and is still
    byte-identical at every [--jobs] width, and a recorded run replays
    bit-for-bit by rebuilding the same schedule. *)

open Ccache_trace

type overload = Block | Reject

val overload_name : overload -> string
(** ["block"] / ["reject"]. *)

type config = {
  router : Router.t;
  batch : int;  (** max requests a shard drains per round (>= 1) *)
  queue_cap : int;  (** per-shard queue bound (>= 1) *)
  overload : overload;
  client_rate : int;  (** max requests a client emits per round (>= 1) *)
}

val config :
  ?overload:overload ->
  ?client_rate:int ->
  router:Router.t ->
  batch:int ->
  queue_cap:int ->
  unit ->
  config
(** Defaults: [Block], [client_rate = 1].
    @raise Invalid_argument on non-positive [batch], [queue_cap] or
    [client_rate]. *)

type shard_schedule = {
  shard : int;
  pages : Page.t array;  (** drained requests, in processing order *)
  batches : (int * int) array;
      (** non-empty drains as [(round, count)]; counts sum to
          [Array.length pages] and prefix-partition it *)
  waits : int array;
      (** rounds spent queued, aligned with [pages] (0 = drained in
          its admission round) *)
  rejected : int;  (** requests dropped at this shard ([Reject] only) *)
  max_depth : int;  (** peak queue depth observed at admission *)
  depth_sum : int;  (** post-drain depth summed over rounds *)
}

type t = {
  config : config;
  rounds : int;  (** logical makespan: rounds until drained empty *)
  shards : shard_schedule array;
  admitted : int;
  rejected : int;
  stalls : int;  (** client-rounds lost to [Block] backpressure *)
}

val build : config -> clients:Page.t array array -> t
(** Run the admission simulation to completion (every client stream
    exhausted, every queue empty).  O(total requests + rounds x
    shards) time, engine-free.

    Order guarantee, relied on by the differential test harness: with
    one client — or with several whose streams never stall — each
    shard's [pages] is exactly the {!Router.split} sub-trace of the
    concatenated client streams, in order.
    @raise Invalid_argument if a tenant router's assignment does not
    cover a client page's user. *)

val clients_of_trace : clients:int -> Trace.t -> Page.t array array
(** Deal a recorded trace round-robin over [clients] request streams
    (position [i] to client [i mod clients]); with the default
    [client_rate = 1] and no stalls, admission re-interleaves the
    streams back into trace order.
    @raise Invalid_argument if [clients <= 0]. *)
