(** One engine shard (see the interface). *)

open Ccache_trace
module Engine = Ccache_sim.Engine

type t = { id : int; engine : Engine.Step.t }

let create ?on_event ~id ~k ~costs ~policy trace =
  if Ccache_sim.Policy.needs_future policy then
    invalid_arg
      (Printf.sprintf
         "Shard.create: offline policy %s cannot serve (no future on a live \
          request stream)"
         (Ccache_sim.Policy.name policy));
  { id; engine = Engine.Step.init ?on_event ~k ~costs policy trace }

let create_dynamic ?on_event ~id ~k ~costs ~policy ~n_users () =
  create ?on_event ~id ~k ~costs ~policy (Trace.of_pages ~n_users [||])

let feed t page = Engine.Step.feed t.engine page

let id t = t.id
let length t = Engine.Step.length t.engine
let served t = Engine.Step.served t.engine

let step_batch t ~from ~until =
  for pos = from to until - 1 do
    Engine.Step.step t.engine pos
  done
  [@@effects.no_alloc] [@@effects.deterministic]

let finish t = Engine.Step.finish t.engine

let run_schedule ?on_event ~k ~costs ~policy ~n_users
    (schedule : Scheduler.shard_schedule) =
  let trace = Trace.of_pages ~n_users schedule.Scheduler.pages in
  let t = create ?on_event ~id:schedule.Scheduler.shard ~k ~costs ~policy trace in
  let from = ref 0 in
  Array.iter
    (fun (_round, count) ->
      step_batch t ~from:!from ~until:(!from + count);
      from := !from + count)
    schedule.Scheduler.batches;
  finish t
