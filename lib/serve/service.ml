(** Replay-form service (see the interface).  The only moving parts
    are [plan] (serial, engine-free) and the per-shard
    [Shard.run_schedule] calls; everything after the merge — including
    every service-level obs write — happens on the calling domain in
    shard order, which is what keeps exports width-independent. *)

open Ccache_trace
module Cf = Ccache_cost.Cost_function
module Engine = Ccache_sim.Engine
module Policy = Ccache_sim.Policy
module Domain_pool = Ccache_util.Domain_pool
module Supervisor = Ccache_util.Supervisor

type config = {
  sched : Scheduler.config;
  shard_k : int;
  policy : Policy.t;
  clients : int;
}

let config ?(policy = Ccache_core.Alg_fast.policy) ?(clients = 1) ?overload
    ?client_rate ?(batch = 8) ?(queue_cap = 64) ~router ~shard_k () =
  if shard_k <= 0 then invalid_arg "Service.config: shard_k must be positive";
  if clients <= 0 then invalid_arg "Service.config: clients must be positive";
  if Policy.needs_future policy then
    invalid_arg
      (Printf.sprintf "Service.config: offline policy %s cannot serve"
         (Policy.name policy));
  let sched = Scheduler.config ?overload ?client_rate ~router ~batch ~queue_cap () in
  { sched; shard_k; policy; clients }

type result = {
  r_config : config;
  schedule : Scheduler.t;
  engines : Engine.result array;
  misses_per_user : int array;
  hits : int;
  total_cost : float;
  throughput : float;
}

let requests r = r.schedule.Scheduler.admitted + r.schedule.Scheduler.rejected
let misses r = Array.fold_left ( + ) 0 r.misses_per_user

let plan config trace =
  let clients = Scheduler.clients_of_trace ~clients:config.clients trace in
  Scheduler.build config.sched ~clients

(* Re-checked here (not just in [config]) because the record type is
   exposed and can be built literally. *)
let validate config ~costs trace =
  if Policy.needs_future config.policy then
    invalid_arg
      (Printf.sprintf "Service.run: offline policy %s cannot serve"
         (Policy.name config.policy));
  if Array.length costs <> Trace.n_users trace then
    invalid_arg
      (Printf.sprintf "Service.run: %d cost functions for %d users"
         (Array.length costs) (Trace.n_users trace))

let merge config ~costs trace schedule engines =
  let n_users = Trace.n_users trace in
  let misses_per_user = Array.make n_users 0 in
  let hits = ref 0 in
  Array.iter
    (fun (r : Engine.result) ->
      hits := !hits + r.Engine.hits;
      Array.iteri
        (fun u m -> misses_per_user.(u) <- misses_per_user.(u) + m)
        r.Engine.misses_per_user)
    engines;
  let total_cost = ref 0. in
  Array.iteri
    (fun u m -> total_cost := !total_cost +. Cf.eval costs.(u) (float_of_int m))
    misses_per_user;
  let throughput =
    if schedule.Scheduler.rounds = 0 then 0.
    else
      float_of_int schedule.Scheduler.admitted
      /. float_of_int schedule.Scheduler.rounds
  in
  {
    r_config = config;
    schedule;
    engines;
    misses_per_user;
    hits = !hits;
    total_cost = !total_cost;
    throughput;
  }

(* Service-level obs, recorded post-merge on the calling domain so the
   metrics export is identical at every execution width.  (Per-request
   policy obs still fires on whichever domain ran the shard; counters
   and histograms merge commutatively, so those are width-independent
   too.) *)
let record_obs result =
  let module M = Ccache_obs.Metrics in
  let s = result.schedule in
  M.incr ~by:(requests result) "serve/requests";
  M.incr ~by:s.Scheduler.admitted "serve/admitted";
  M.incr ~by:s.Scheduler.rejected "serve/rejected";
  M.incr ~by:s.Scheduler.stalls "serve/stalls";
  M.incr ~by:s.Scheduler.rounds "serve/rounds";
  Array.iter
    (fun (ss : Scheduler.shard_schedule) ->
      M.incr ~by:(Array.length ss.Scheduler.batches) "serve/batches";
      Array.iter
        (fun w -> M.observe "serve/wait_rounds" (float_of_int w))
        ss.Scheduler.waits;
      M.set_gauge
        (Printf.sprintf "serve/shard%d/max_depth" ss.Scheduler.shard)
        (float_of_int ss.Scheduler.max_depth);
      Ccache_obs.Span.instant ~cat:"serve"
        ~args:
          [
            ("shard", Ccache_obs.Sink.Int ss.Scheduler.shard);
            ("drained", Ccache_obs.Sink.Int (Array.length ss.Scheduler.pages));
            ("rejected", Ccache_obs.Sink.Int ss.Scheduler.rejected);
            ("max_depth", Ccache_obs.Sink.Int ss.Scheduler.max_depth);
          ]
        "serve.shard")
    s.Scheduler.shards;
  Array.iter Engine.record_result_obs result.engines

let run_inner ?pool config ~costs trace =
  validate config ~costs trace;
  let schedule = plan config trace in
  let n_users = Trace.n_users trace in
  let engines =
    Domain_pool.map_list ?pool
      ~f:(fun ss ->
        Shard.run_schedule ~k:config.shard_k ~costs ~policy:config.policy
          ~n_users ss)
      (Array.to_list schedule.Scheduler.shards)
    |> Array.of_list
  in
  merge config ~costs trace schedule engines

let run ?pool config ~costs trace =
  if not (Ccache_obs.Control.enabled ()) then run_inner ?pool config ~costs trace
  else
    Ccache_obs.Span.with_ ~cat:"serve"
      ~args:
        [
          ("router", Ccache_obs.Sink.Str (Router.name config.sched.Scheduler.router));
          ("shards", Ccache_obs.Sink.Int (Router.shards config.sched.Scheduler.router));
          ("requests", Ccache_obs.Sink.Int (Trace.length trace));
          ("policy", Ccache_obs.Sink.Str (Policy.name config.policy));
        ]
      "serve.run"
      (fun () ->
        let r = run_inner ?pool config ~costs trace in
        record_obs r;
        r)

(* {2 Supervised execution} *)

let shard_task_id i = Printf.sprintf "shard/%d" i

let engine_codec =
  let ints a =
    String.concat "," (Array.to_list (Array.map string_of_int a))
  in
  let encode (r : Engine.result) =
    Printf.sprintf "%s\t%d\t%d\t%d\t%d\t%s\t%s\t%s" r.Engine.policy r.Engine.k
      r.Engine.trace_length r.Engine.n_users r.Engine.hits
      (ints r.Engine.misses_per_user)
      (ints r.Engine.evictions_per_user)
      (String.concat ","
         (List.map (fun p -> string_of_int (Page.pack p)) r.Engine.final_cache))
  in
  let decode line =
    match String.split_on_char '\t' line with
    | [ policy; k; trace_length; n_users; hits; m; e; c ] -> (
        try
          let ints field =
            if field = "" then [||]
            else
              Array.of_list
                (List.map int_of_string (String.split_on_char ',' field))
          in
          let pages field =
            if field = "" then []
            else
              List.map
                (fun x -> Page.unpack (int_of_string x))
                (String.split_on_char ',' field)
          in
          Some
            {
              Engine.policy;
              k = int_of_string k;
              trace_length = int_of_string trace_length;
              n_users = int_of_string n_users;
              hits = int_of_string hits;
              misses_per_user = ints m;
              evictions_per_user = ints e;
              final_cache = pages c;
            }
        with _ -> None)
    | _ -> None
  in
  { Supervisor.encode; decode }

let fingerprint config ~costs trace =
  let sched = config.sched in
  let pages = Buffer.create (4 * Trace.length trace) in
  for pos = 0 to Trace.length trace - 1 do
    Buffer.add_string pages (string_of_int (Page.pack (Trace.request trace pos)));
    Buffer.add_char pages ','
  done;
  Printf.sprintf
    "serve-v1 router=%s shards=%d k=%d batch=%d cap=%d overload=%s rate=%d \
     clients=%d policy=%s costs=%s users=%d requests=%d trace=%Lx"
    (Router.name sched.Scheduler.router)
    (Router.shards sched.Scheduler.router)
    config.shard_k sched.Scheduler.batch sched.Scheduler.queue_cap
    (Scheduler.overload_name sched.Scheduler.overload)
    sched.Scheduler.client_rate config.clients
    (Policy.name config.policy)
    (String.concat "," (Array.to_list (Array.map Cf.name costs)))
    (Trace.n_users trace) (Trace.length trace)
    (Ccache_util.Prng.hash_string (Buffer.contents pages))

type supervised = {
  outcome : result option;
  failures : Supervisor.failure list;
  replayed : string list;
}

let run_supervised ?pool ?policy ?fault ?checkpoint ?on_event config ~costs
    trace =
  validate config ~costs trace;
  let schedule = plan config trace in
  let n_users = Trace.n_users trace in
  let tasks =
    Array.to_list schedule.Scheduler.shards
    |> List.map (fun (ss : Scheduler.shard_schedule) ->
           {
             Supervisor.id = shard_task_id ss.Scheduler.shard;
             run =
               (fun _ctx ->
                 Shard.run_schedule ~k:config.shard_k ~costs
                   ~policy:config.policy ~n_users ss);
           })
  in
  let replayed = ref [] in
  let on_event ev =
    (match ev with
    | Supervisor.Replayed { task } -> replayed := task :: !replayed
    | _ -> ());
    match on_event with Some f -> f ev | None -> ()
  in
  let outcomes =
    Supervisor.run ?pool ?policy ?fault ?checkpoint ~codec:engine_codec
      ~on_event tasks
  in
  let failures = Supervisor.failures outcomes in
  let outcome =
    if failures <> [] then None
    else begin
      let engines = Array.of_list (Supervisor.completed outcomes) in
      let r = merge config ~costs trace schedule engines in
      if Ccache_obs.Control.enabled () then record_obs r;
      Some r
    end
  in
  { outcome; failures; replayed = List.rev !replayed }
