(** Shard routing: the deterministic page-space partition of the
    serving layer.

    Two partitions of the request stream across [shards] engine
    shards:

    - {b page-hash} — shard = avalanche-mixed packed page modulo
      [shards].  Spreads every tenant across all shards, so per-shard
      load tracks aggregate load; this is the partition the
      differential harness exercises (a page's shard is a pure
      function of the page, so any trace splits into per-shard
      sub-traces independent of scheduling).
    - {b tenant} — shard = [assignment.(user)].  All of a tenant's
      pages live on one shard, keeping per-tenant state sparse (one
      shard touches it) — the {!Ccache_multipool.Multi_engine} pool
      model lifted onto the service; the default assignment is the
      same round-robin [user mod shards]. *)

open Ccache_trace

type t

val by_page : shards:int -> t
(** @raise Invalid_argument if [shards <= 0]. *)

val by_tenant : ?assignment:int array -> shards:int -> n_users:int -> unit -> t
(** [assignment.(user)] is the user's shard; defaults to round-robin
    [user mod shards].  @raise Invalid_argument on [shards <= 0], an
    assignment/users length mismatch, or an entry outside
    [\[0, shards)]. *)

val shards : t -> int

val is_by_tenant : t -> bool

val name : t -> string
(** ["page"] or ["tenant"] — stable, used in fingerprints and
    reports. *)

val route : t -> Page.t -> int
(** The page's shard, in [\[0, shards)].  Deterministic: depends only
    on the router value and the page. *)

val split : t -> Trace.t -> Trace.t array
(** Per-shard sub-traces: element [s] holds, in trace order, exactly
    the requests with [route t page = s].  Every sub-trace keeps the
    original [n_users].  The differential baseline: a service run that
    never rejects must process precisely these sequences. *)
