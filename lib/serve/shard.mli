(** One engine shard: a {!Ccache_sim.Engine.Step} instance replaying
    the requests the {!Scheduler} assigned to it, batch by batch.

    A shard owns nothing but its engine state; all queueing and
    admission happened in the scheduler, so shard execution is an
    isolated, deterministic function of its schedule — which is why
    {!Service} can run shards on worker domains (or replay one from a
    checkpoint) without any cross-shard synchronisation.

    [step_batch] is the service hot path — one call per drained batch,
    advancing the engine over a contiguous slice of the shard's
    sequence.  It carries the same CI-gated effect contracts as
    [Engine.Step.step] (no allocation, no nondeterminism; enforced by
    [dune build @effects]). *)

open Ccache_trace

type t

val create :
  ?on_event:(Ccache_sim.Engine.event -> unit) ->
  id:int ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  policy:Ccache_sim.Policy.t ->
  Trace.t ->
  t
(** Shard [id] over its (already routed) request sequence, with a
    per-shard cache of [k] pages.  Offline policies are rejected: the
    serving layer has no future.  @raise Invalid_argument as
    [Engine.Step.init], or on an offline policy. *)

val create_dynamic :
  ?on_event:(Ccache_sim.Engine.event -> unit) ->
  id:int ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  policy:Ccache_sim.Policy.t ->
  n_users:int ->
  unit ->
  t
(** A shard with no prebuilt sequence, for the live {!Session}: the
    engine state is built over an empty trace (which fixes [n_users]
    and the cost vector) and requests arrive through {!feed}. *)

val feed : t -> Page.t -> unit
(** Replay one live request ({!Ccache_sim.Engine.Step.feed}). *)

val id : t -> int

val length : t -> int
(** Requests in the shard's sequence. *)

val served : t -> int
(** Requests replayed so far. *)

val step_batch : t -> from:int -> until:int -> unit
(** Replay positions [from .. until - 1] of the shard's sequence.
    Batches must tile the sequence in order.  @raise Policy_error if
    the policy misbehaves. *)

val finish : t -> Ccache_sim.Engine.result
(** Assemble the shard's engine result (call once, after the last
    batch). *)

val run_schedule :
  ?on_event:(Ccache_sim.Engine.event -> unit) ->
  k:int ->
  costs:Ccache_cost.Cost_function.t array ->
  policy:Ccache_sim.Policy.t ->
  n_users:int ->
  Scheduler.shard_schedule ->
  Ccache_sim.Engine.result
(** Convenience: build the shard over its schedule's page sequence and
    replay every scheduled batch.  Exactly [create] + a [step_batch]
    loop over [schedule.batches] + [finish]. *)
