(** ALG-DISCRETE (paper Figure 3) as an engine policy — the paper's
    primary contribution, in its reference O(k)-per-eviction form.
    For the O(log k) implementation see {!Alg_fast}; the two are
    property-tested identical under integer-valued costs.

    The ablation switches disable individual Figure-3 update rules for
    experiment E9:

    - no {e bump}: drops the same-owner marginal increase, severing
      the coupling between a user's pages;
    - no {e subtract}: drops the uniform budget decay, reducing the
      policy to greedy minimum-marginal-cost eviction (no recency
      signal at all). *)

type variant = {
  mode : Ccache_cost.Cost_function.derivative_mode;
  bump : bool;
  subtract : bool;
}

val default_variant : variant
(** Discrete marginals, both rules on — the paper's algorithm. *)

val candidate_bounds : float array
(** Histogram buckets for eviction candidate-set sizes (shared with
    {!Alg_fast} so the two policies' telemetry is comparable). *)

val variant_name : variant -> string

val make_variant : variant -> Ccache_sim.Policy.t

val policy : Ccache_sim.Policy.t
(** The paper's algorithm ("alg-discrete"), discrete marginals. *)

val analytic : Ccache_sim.Policy.t
(** Same with analytic derivatives f'. *)

val no_bump : Ccache_sim.Policy.t
(** Ablation: no same-owner marginal bump. *)

val no_subtract : Ccache_sim.Policy.t
(** Ablation: greedy marginal-cost eviction. *)

val make :
  ?mode:Ccache_cost.Cost_function.derivative_mode -> unit -> Ccache_sim.Policy.t
