(** ALG-DISCRETE (paper Figure 3) as an engine policy — the paper's
    primary contribution.

    Reference implementation: O(k) per eviction via a budget sweep.
    For the O(log k) variant see {!Alg_fast}; equivalence of the two is
    property-tested.

    The [~bump] and [~subtract] switches disable individual update
    rules for the ablation experiments (E9 in DESIGN.md):

    - [~bump:false] drops the same-owner marginal increase, severing
      the coupling between a user's pages;
    - [~subtract:false] drops the uniform budget decay, reducing the
      policy to greedy minimum-marginal-cost eviction (no recency
      component at all).

    Both switches default to [true] = the paper's algorithm. *)

module Policy = Ccache_sim.Policy
module Cf = Ccache_cost.Cost_function
open Ccache_trace

type variant = {
  mode : Cf.derivative_mode;
  bump : bool;
  subtract : bool;
}

let default_variant = { mode = Cf.Discrete; bump = true; subtract = true }

let variant_name { mode; bump; subtract } =
  let base = "alg-discrete" in
  let parts =
    (match mode with Cf.Analytic -> [ "analytic" ] | Cf.Discrete -> [])
    @ (if bump then [] else [ "nobump" ])
    @ if subtract then [] else [ "nosubtract" ]
  in
  match parts with [] -> base | _ -> base ^ "[" ^ String.concat "," parts ^ "]"

(* A variant-aware clone of Budget_state.evict: the shared module
   implements the paper's rules; ablations re-derive the update here. *)
let ablated_evict (st : Budget_state.t) ~bump ~subtract victim =
  let delta =
    match Budget_state.budget st victim with
    | Some b -> b
    | None -> invalid_arg "alg-discrete: victim not cached"
  in
  let owner = Page.user victim in
  let bump_amount =
    if bump then
      Budget_state.rate st owner ~offset:2 -. Budget_state.rate st owner ~offset:1
    else 0.0
  in
  Page.Tbl.remove st.Budget_state.b victim;
  let slot = Stdlib.min owner (Array.length st.Budget_state.m - 1) in
  st.Budget_state.m.(slot) <- st.Budget_state.m.(slot) + 1;
  (* in-place sweep, mirroring Budget_state.evict: no intermediate
     O(k) update list per eviction *)
  Page.Tbl.filter_map_inplace
    (fun page b ->
      let b = if subtract then b -. delta else b in
      Some (if Page.user page = owner then b +. bump_amount else b))
    st.Budget_state.b;
  delta

(* Candidate-set buckets: occupancy at an eviction is bounded by k. *)
let candidate_bounds =
  [| 4.0; 16.0; 64.0; 256.0; 1024.0; 4096.0; 16384.0; 65536.0 |]

(* Decision telemetry for one eviction: the candidate set the budget
   sweep scanned, the marginal-cost draw [delta] charged to the
   victim's owner, and whether the same-owner bump rule fired.  Only
   reached when recording is on. *)
let record_evict ~name ~pos ~candidates ~bumped victim delta =
  let module M = Ccache_obs.Metrics in
  M.incr (name ^ "/evictions");
  M.observe (name ^ "/charge") delta;
  M.observe
    (name ^ "/charge/user" ^ string_of_int (Page.user victim))
    delta;
  M.observe ~bounds:candidate_bounds (name ^ "/candidates")
    (float_of_int candidates);
  if bumped then M.incr (name ^ "/owner-bumps");
  Ccache_obs.Span.instant ~cat:"alg"
    ~args:
      [
        ("pos", Ccache_obs.Sink.Int pos);
        ("owner", Ccache_obs.Sink.Int (Page.user victim));
        ("charge", Ccache_obs.Sink.Float delta);
        ("candidates", Ccache_obs.Sink.Int candidates);
      ]
    (name ^ "/evict")

let make_variant variant =
  Policy.make ~name:(variant_name variant) (fun config ->
      let st =
        Budget_state.create ~costs:config.Policy.Config.costs ~mode:variant.mode
          ~n_users:config.Policy.Config.n_users
      in
      {
        Policy.on_hit = (fun ~pos:_ page -> Budget_state.touch st page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ -> fst (Budget_state.min_budget st));
        on_insert = (fun ~pos:_ page -> Budget_state.touch st page);
        on_evict =
          (fun ~pos victim ->
            let obs = Ccache_obs.Control.enabled () in
            (* candidate set = cached pages at decision time (the
               victim is still in the budget table here) *)
            let candidates = if obs then Budget_state.cached_count st else 0 in
            let delta =
              if variant.bump && variant.subtract then
                Budget_state.evict st victim
              else
                ablated_evict st ~bump:variant.bump ~subtract:variant.subtract
                  victim
            in
            if obs then
              record_evict ~name:(variant_name variant) ~pos ~candidates
                ~bumped:variant.bump victim delta);
      })

(** The paper's algorithm with discrete marginals (Section 2.5). *)
let policy = make_variant default_variant

(** The paper's algorithm with analytic derivatives f'. *)
let analytic = make_variant { default_variant with mode = Cf.Analytic }

(** Ablation: no same-owner marginal bump. *)
let no_bump = make_variant { default_variant with bump = false }

(** Ablation: no uniform budget decay (greedy marginal-cost eviction). *)
let no_subtract = make_variant { default_variant with subtract = false }

let make ?(mode = Cf.Discrete) () = make_variant { default_variant with mode }
