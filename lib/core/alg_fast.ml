(** ALG-DISCRETE with O(log k) evictions (DESIGN.md decision 2).

    Figure 3's eviction touches every cached budget (uniform [-delta]
    plus a same-owner bump), which makes the reference implementation
    O(k) per eviction.  Both updates are rank-preserving within a user,
    so we decompose

      [B(p) = raw(p) - Y + U(user p)]

    where [Y] accumulates all uniform subtractions and [U(i)] all of
    user [i]'s bumps; [raw(p)] is written once per access.  Budgets
    then live in per-user min-heaps over [raw] (page ids are unique
    within a user, giving the same deterministic tie-break as
    {!Budget_state.min_budget}), with a top-level heap over users keyed
    by [min raw(i) + U(i)] (the common [-Y] cannot change the order).

    With integer-valued cost marginals the arithmetic is exact and this
    policy is bit-for-bit identical to {!Alg_discrete.policy}
    (property-tested); with general float costs ties may resolve
    differently, changing victims but not the algorithm's guarantees. *)

module Policy = Ccache_sim.Policy
module Cf = Ccache_cost.Cost_function
module Heap = Ccache_util.Indexed_heap
open Ccache_trace

let make ?(mode = Cf.Discrete) () =
  let name =
    match mode with
    | Cf.Discrete -> "alg-discrete-fast"
    | Cf.Analytic -> "alg-discrete-fast[analytic]"
  in
  Policy.make ~name (fun config ->
      let n_users = config.Policy.Config.n_users in
      let n_slots = n_users + 1 (* + flush dummy *) in
      let per_user = Array.init n_slots (fun _ -> Heap.create ()) in
      let top = Heap.create ~capacity:n_slots () in
      (* [y_off] lives in a one-cell floatarray: a [float ref] would box
         a fresh float on every eviction. *)
      let y_off = Float.Array.make 1 0.0 in
      let u_off = Array.make n_slots 0.0 in
      let m = Array.make n_slots 0 in
      let slot u = Stdlib.min u n_users in
      (* Cost lookup hoisted out of the request path: [Config.cost]
         builds a fresh zero-cost function for the dummy slot on every
         call, which would allocate on every touch. *)
      let costs = Array.init n_slots (fun u -> Policy.Config.cost config u) in
      let rate u ~offset =
        let s = slot u in
        Cf.rate costs.(s) mode (m.(s) + offset)
      in
      (* f'_i(m_i + 1) for every slot, refreshed when m_i moves: touch
         needs this value on every request, and computing it live costs
         two cost-function closure calls each time. *)
      let rate1 = Float.Array.init n_slots (fun s -> rate s ~offset:1) in
      (* keep the top-level entry for user-slot [s] in sync *)
      let sync_top s =
        if Heap.is_empty per_user.(s) then begin
          if Heap.mem top s then Heap.remove top s
        end
        else
          Heap.set top ~key:s ~prio:(Heap.min_prio_exn per_user.(s) +. u_off.(s))
      in
      let touch page =
        let u = Page.user page in
        let s = slot u in
        let target = Float.Array.get rate1 s in
        let raw = target +. Float.Array.get y_off 0 -. u_off.(s) in
        Heap.set per_user.(s) ~key:(Page.id page) ~prio:raw;
        sync_top s
        [@@effects.no_alloc] [@@effects.deterministic]
      in
      (* Named (rather than inlined into the record) so the static
         analyzer has a node to pin the hot-path contracts on. *)
      let evict ~pos victim =
        let u = Page.user victim in
        let s = slot u in
        let raw = Heap.priority per_user.(s) (Page.id victim) in
        let delta = raw -. Float.Array.get y_off 0 +. u_off.(s) in
        Heap.remove per_user.(s) (Page.id victim);
        let bump = rate u ~offset:2 -. rate u ~offset:1 in
        m.(s) <- m.(s) + 1;
        Float.Array.set rate1 s (rate u ~offset:1);
        Float.Array.set y_off 0 (Float.Array.get y_off 0 +. delta);
        u_off.(s) <- u_off.(s) +. bump;
        (* only the owner's top entry changes: every other user's
           key [min raw + U] is untouched by Y *)
        sync_top s;
        if Ccache_obs.Control.enabled () then begin
          (* Decision telemetry mirrors Alg_discrete.record_evict,
             except the candidate set here is what the heaps
             actually scanned: the top heap (one entry per user
             with cached pages) — O(log k) work, not O(k). *)
          let module M = Ccache_obs.Metrics in
          M.incr (name ^ "/evictions");
          M.observe (name ^ "/charge") delta;
          M.observe (name ^ "/charge/user" ^ string_of_int u) delta;
          M.observe ~bounds:Alg_discrete.candidate_bounds
            (name ^ "/candidate-users")
            (float_of_int (Heap.length top));
          M.incr (name ^ "/owner-bumps");
          Ccache_obs.Span.instant ~cat:"alg"
            ~args:
              [
                ("pos", Ccache_obs.Sink.Int pos);
                ("owner", Ccache_obs.Sink.Int u);
                ("charge", Ccache_obs.Sink.Float delta);
              ]
            (name ^ "/evict")
        end
        [@@effects.no_alloc] [@@effects.deterministic]
      in
      {
        Policy.on_hit = (fun ~pos:_ page -> touch page);
        wants_evict = Policy.never_evict_early;
        choose_victim =
          (fun ~pos:_ ~incoming:_ ->
            let s = Heap.min_key_exn top in
            let pid = Heap.min_key_exn per_user.(s) in
            (* user-slot s only holds pages of user s (the dummy slot
               holds dummy pages whose user id is exactly n_users) *)
            Page.make ~user:s ~id:pid);
        on_insert = (fun ~pos:_ page -> touch page);
        on_evict = evict;
      })

let policy = make ()
let analytic = make ~mode:Cf.Analytic ()
