(** The budget state machine of ALG-DISCRETE (paper Figure 3).

    Shared by the {!Alg_discrete} policy and the dual-instrumented
    {!Alg_cont} runner so both provably make identical decisions.

    State: a budget [B(p)] for every cached page and the per-user
    eviction counts [m(i,t)].  The three update rules:

    - on any access (hit or insert) of page [p]:
        [B(p) <- f'_{i(p)}(m(i(p)) + 1)]
    - eviction victim: the cached page with minimum budget (ties broken
      by {!Ccache_trace.Page.compare}, making the algorithm fully
      deterministic);
    - on evicting [p] with budget [delta]:
        every other cached page loses [delta], and every cached page of
        user [i(p)] additionally gains
        [f'(m+2) - f'(m+1)] (evaluated at the pre-eviction count [m]) —
        the owner's marginal cost just went up.

    [B(p)] equals the residual of the gradient condition for [p]'s
    current interval in ALG-CONT, i.e.
    [f'(m(i(p))+1) - sum of y_t over the interval so far] (the [z] term
    is zero for cached pages), which is how the correctness proof reads
    the state. *)

open Ccache_trace
module Cf = Ccache_cost.Cost_function

type t = {
  costs : Cf.t array;  (** indexed by user; out-of-range users cost 0 *)
  mode : Cf.derivative_mode;
  b : float Page.Tbl.t;  (** budgets of currently cached pages *)
  m : int array;  (** evictions per user so far, one slot per user + dummy *)
}

let zero_cost = Cf.linear ~slope:0.0 ()

let create ~costs ~mode ~n_users =
  if Array.length costs < n_users then
    invalid_arg "Budget_state.create: costs shorter than n_users";
  { costs; mode; b = Page.Tbl.create 256; m = Array.make (n_users + 1) 0 }

let cost_of t user =
  if user < Array.length t.costs then t.costs.(user) else zero_cost

(* f'_i evaluated at (m_i + offset); [Discrete] mode uses the marginal
   f(x) - f(x-1) as Section 2.5 allows. *)
let rate t user ~offset =
  let slot = Stdlib.min user (Array.length t.m - 1) in
  let x = t.m.(slot) + offset in
  Cf.rate (cost_of t user) t.mode x

let evictions t user = t.m.(Stdlib.min user (Array.length t.m - 1))

let budget t page = Page.Tbl.find_opt t.b page
let cached_count t = Page.Tbl.length t.b

(** Refresh [B(p)] on a hit or insertion (a new interval starts). *)
let touch t page =
  Page.Tbl.replace t.b page (rate t (Page.user page) ~offset:1)

(** Cached page with minimum budget; deterministic tie-break by
    {!Page.compare}.  Raises [Invalid_argument] on an empty cache. *)
let min_budget t =
  let best = ref None in
  Page.Tbl.iter
    (fun page b ->
      match !best with
      | None -> best := Some (page, b)
      | Some (bp, bb) ->
          if b < bb || (b = bb && Page.compare page bp < 0) then
            best := Some (page, b))
    t.b;
  match !best with
  | Some pb -> pb
  | None -> invalid_arg "Budget_state.min_budget: empty cache"

(** Apply the full Figure-3 eviction update for [victim]; returns the
    victim's budget [delta] (the amount [y_t] increases by in
    ALG-CONT).  The incoming page must not yet have been [touch]ed. *)
let evict t victim =
  let delta =
    match Page.Tbl.find_opt t.b victim with
    | Some b -> b
    | None -> invalid_arg "Budget_state.evict: victim not cached"
  in
  Page.Tbl.remove t.b victim;
  let owner = Page.user victim in
  (* marginal bump uses the pre-eviction count m *)
  let bump = rate t owner ~offset:2 -. rate t owner ~offset:1 in
  let slot = Stdlib.min owner (Array.length t.m - 1) in
  t.m.(slot) <- t.m.(slot) + 1;
  (* single in-place sweep: subtract delta everywhere, add bump to
     owner pages.  [filter_map_inplace] rewrites each binding where it
     sits — no intermediate update list, no rehashing, O(k) with no
     O(k) garbage. *)
  Page.Tbl.filter_map_inplace
    (fun page b ->
      let b = b -. delta in
      Some (if Page.user page = owner then b +. bump else b))
    t.b;
  delta

(** All budgets, sorted by page — used by tests and the fast-impl
    equivalence property. *)
let budgets t =
  Page.Tbl.fold (fun p b acc -> (p, b) :: acc) t.b []
  |> List.sort (fun (a, _) (b, _) -> Page.compare a b)
