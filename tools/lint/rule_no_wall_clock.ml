(** no-wall-clock: direct wall-clock reads inside [lib/].

    The determinism contract (DESIGN.md Section 9) is that wall-clock
    never reaches simulation state: experiment outputs must be
    byte-identical across runs and [--jobs] widths, and a timestamp
    read anywhere in the data path breaks that silently.  Timestamps
    exist only to annotate observability records, and they flow
    through the [Ccache_obs.Clock] capability — whose [wall] is the
    single sanctioned read, so [lib/obs/clock.ml] is exempt by path.
    [Unix.sleepf] (supervisor backoff) is deliberately not flagged:
    sleeping shapes the schedule, never a value. *)

open Parsetree

let banned =
  [ [ "Unix"; "gettimeofday" ]; [ "Unix"; "time" ]; [ "Sys"; "time" ] ]

let is_banned lid =
  let parts = Lint_rule.lident_parts lid in
  let parts = match parts with "Stdlib" :: rest -> rest | _ -> parts in
  List.exists (fun b -> parts = b) banned

(* the one sanctioned read: Ccache_obs.Clock.wall *)
let exempt path =
  let suffix = "obs/clock.ml" in
  let n = String.length path and s = String.length suffix in
  n >= s && String.sub path (n - s) s = suffix

let check ~path src =
  if (not (Lint_rule.has_segment "lib" path)) || exempt path then []
  else begin
    let out = ref [] in
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } when is_banned txt ->
                out :=
                  Lint_rule.finding loc
                    (Printf.sprintf
                       "wall-clock read (%s) in lib/; take timestamps through \
                        the Ccache_obs.Clock capability so outputs stay \
                        deterministic and tests can substitute clocks"
                       (String.concat "." (Lint_rule.lident_parts txt)))
                  :: !out
            | _ -> ());
            default_iterator.expr it e);
      }
    in
    (match src with
    | Lint_rule.Impl s -> it.structure it s
    | Lint_rule.Intf s -> it.signature it s);
    List.rev !out
  end

let rule =
  {
    Lint_rule.name = "no-wall-clock";
    describe =
      "wall-clock reads in lib/ break determinism; use Ccache_obs.Clock";
    check_ast = Some check;
    check_files = None;
  }
