(** mli-coverage: every [lib/**/*.ml] ships a sibling [.mli].

    Interfaces are where the repo documents numeric tolerances and
    determinism contracts; a module without one silently exports its
    internals.  Filesystem-level check — suppress with a floating
    [[@@@lint.allow "mli-coverage"]] in the [.ml] or an allowlist
    entry. *)

let check ~ml_files =
  List.filter_map
    (fun path ->
      if
        Lint_rule.has_segment "lib" path
        && Filename.check_suffix path ".ml"
        && not (Sys.file_exists (path ^ "i"))
      then
        Some
          ( path,
            "lib/ module has no interface: add a sibling .mli documenting \
             the public API (and its tolerances/contracts)" )
      else None)
    ml_files

let rule =
  {
    Lint_rule.name = "mli-coverage";
    describe = "every lib/**/*.ml must have a sibling .mli";
    check_ast = None;
    check_files = Some check;
  }
