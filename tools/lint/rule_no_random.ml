(** no-stdlib-random: any reference to [Stdlib.Random].

    The determinism contract (DESIGN.md, CI's jobs-1-vs-jobs-N diff)
    requires every stochastic component to draw from seeded, splittable
    [Ccache_util.Prng] streams.  [Random] has one global, domain-local
    state, so outputs would depend on scheduling and [--jobs] width. *)

open Parsetree

let is_random lid =
  match Lint_rule.lident_parts lid with
  | "Random" :: _ | "Stdlib" :: "Random" :: _ -> true
  | _ -> false

let msg =
  "reference to Stdlib.Random; draw from a seeded Ccache_util.Prng stream \
   instead so output is reproducible at any --jobs width"

let check ~path:_ src =
  let out = ref [] in
  let flag loc = out := Lint_rule.finding loc msg :: !out in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; loc } when is_random txt -> flag loc
          | _ -> ());
          default_iterator.expr it e);
      module_expr =
        (fun it m ->
          (match m.pmod_desc with
          | Pmod_ident { txt; loc } when is_random txt -> flag loc
          | _ -> ());
          default_iterator.module_expr it m);
    }
  in
  (match src with
  | Lint_rule.Impl s -> it.structure it s
  | Lint_rule.Intf s -> it.signature it s);
  List.rev !out

let rule =
  {
    Lint_rule.name = "no-stdlib-random";
    describe = "Stdlib.Random breaks seeded --jobs determinism; use Ccache_util.Prng";
    check_ast = Some check;
    check_files = None;
  }
