(** ccache_lint — compiler-libs static analysis for the repo's
    conventions the type checker cannot see.

    Usage:
      ccache_lint [--format=text|github|sarif] [--allowlist FILE]
                  [--cmt-root DIR] [--list-rules] PATH...

    Parses every [.ml]/[.mli] under the given paths (skipping [_build]
    and dot-directories) with compiler-libs [Parse], runs each
    registered rule, filters findings through [@lint.allow] spans and
    the allowlist, prints [file:line:col: [rule] message] diagnostics
    in deterministic order, and exits 1 iff any finding remains.
    Purely syntactic by default — no type information is needed, so
    files are linted without being compiled.

    [--cmt-root DIR] promotes the [domain-capture] rule to typed mode:
    the effect analysis ([Effects_pipeline]) is run over the [.cmt]
    artifacts under DIR, and pool-task closures are checked against
    the whole-library call graph — catching *transitive* writes to
    module-level state that the one-file parsetree heuristic cannot
    see.  Files covered by a loaded [.cmt] use the typed verdict;
    everything else (and every run without [--cmt-root]) falls back to
    the parsetree heuristic. *)

type format = Text | Github | Sarif

let usage =
  "usage: ccache_lint [--format=text|github|sarif] [--allowlist FILE] \
   [--cmt-root DIR] [--list-rules] PATH..."

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("ccache_lint: " ^ s); exit 2) fmt

(* ---- file discovery (sorted, so diagnostics are deterministic) ---- *)

let rec collect acc path =
  if not (Sys.file_exists path) then fail "no such file or directory: %s" path
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || (name <> "" && name.[0] = '.') then acc
           else collect acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

(* ---- parsing ---- *)

let parse_file path : (Lint_rule.source, string) result =
  (* An unreadable file (permissions, TOCTOU deletion) is an
     environment problem, not a lint finding: diagnose and exit 2
     rather than letting the Sys_error escape as a backtrace. *)
  let ic =
    try open_in_bin path with Sys_error msg -> fail "cannot read: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      try
        if Filename.check_suffix path ".mli" then
          Ok (Lint_rule.Intf (Parse.interface lexbuf))
        else Ok (Lint_rule.Impl (Parse.implementation lexbuf))
      with exn -> Error (Printexc.to_string exn))

(* ---- driver ---- *)

(* Typed domain-capture: pool-site findings from the cross-module
   effect analysis, plus the set of source files it covered (those
   skip the parsetree heuristic).  Returns [None] when DIR holds no
   .cmt units, in which case the caller falls back to the heuristic
   everywhere. *)
let typed_domain_capture dir =
  match Effects_pipeline.analyze ~roots:[ dir ] () with
  | exception _ -> None
  | t when Hashtbl.length t.Effects_pipeline.defs = 0 -> None
  | t ->
      let covered = Hashtbl.create 64 in
      List.iter
        (fun (mi : Effects_defs.modinfo) ->
          Hashtbl.replace covered mi.unit_.Cmt_load.source ())
        t.Effects_pipeline.mods;
      let findings =
        List.concat_map
          (fun (site : Effects_extract.pool_site) ->
            let effs =
              Effects_contract.pool_task_effects t.Effects_pipeline.graph
                t.Effects_pipeline.result ~extern:Effects_seed.classify site
            in
            let mk msg =
              Lint_diag.make ~file:site.site_source ~rule:"domain-capture"
                ~msg site.site_loc
            in
            (if Effect_set.mem effs Effect_set.Gwrite then
               [
                 mk
                   (Printf.sprintf
                      "closure passed to Domain_pool.%s in %s transitively \
                       writes module-level state (call-graph analysis): an \
                       unsynchronised cross-domain write (data race)"
                      site.site_fn site.site_in);
               ]
             else [])
            @
            if site.site_captured <> [] then
              [
                mk
                  (Printf.sprintf
                     "closure passed to Domain_pool.%s in %s mutates state \
                      captured from the enclosing scope: %s"
                     site.site_fn site.site_in
                     (String.concat ", " site.site_captured));
              ]
            else [])
          t.Effects_pipeline.pool_sites
      in
      Some (covered, findings)

let () =
  let format = ref Text in
  let allowlist = ref [] in
  let cmt_root = ref None in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--format=github" :: rest -> format := Github; parse_args rest
    | "--format=text" :: rest -> format := Text; parse_args rest
    | "--format=sarif" :: rest -> format := Sarif; parse_args rest
    | "--format" :: ("github" | "text" | "sarif") :: _ ->
        fail "use --format=github / --format=text / --format=sarif"
    | "--allowlist" :: file :: rest ->
        allowlist := !allowlist @ Lint_suppress.load_allowlist file;
        parse_args rest
    | "--cmt-root" :: dir :: rest ->
        cmt_root := Some dir;
        parse_args rest
    | "--list-rules" :: _ ->
        List.iter
          (fun (r : Lint_rule.t) -> Printf.printf "%-18s %s\n" r.name r.describe)
          Lint_registry.all;
        exit 0
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        fail "unknown option %s\n%s" s usage
    | p :: rest -> paths := p :: !paths; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then fail "no paths given\n%s" usage;
  let files = List.fold_left collect [] (List.rev !paths) |> List.sort String.compare in
  let typed = Option.map typed_domain_capture !cmt_root |> Option.join in
  let typed_covers path =
    match typed with
    | Some (covered, _) -> Hashtbl.mem covered path
    | None -> false
  in
  let al = !allowlist in
  let diags = ref [] in
  let spans_by_file = Hashtbl.create 64 in
  let add path (d : Lint_diag.t) =
    let spans =
      Option.value (Hashtbl.find_opt spans_by_file path) ~default:[]
    in
    if
      (not
         (Lint_suppress.suppressed spans ~rule:d.rule ~cnum:d.cnum
            ~cend:d.cend))
      && not (Lint_suppress.allowlisted al ~rule:d.rule ~file:path)
    then diags := d :: !diags
  in
  (* per-file AST rules *)
  List.iter
    (fun path ->
      match parse_file path with
      | Error msg ->
          add path (Lint_diag.at_file_start ~file:path ~rule:"parse-error" ~msg)
      | Ok src ->
          Hashtbl.replace spans_by_file path (Lint_suppress.collect src);
          List.iter
            (fun (rule : Lint_rule.t) ->
              match rule.check_ast with
              | None -> ()
              | Some check
                when rule.name = "domain-capture" && typed_covers path ->
                  (* the call-graph verdict for this file supersedes
                     the one-file heuristic *)
                  ignore check
              | Some check ->
                  List.iter
                    (fun (f : Lint_rule.finding) ->
                      add path
                        (Lint_diag.make ~file:path ~rule:rule.name ~msg:f.msg
                           f.loc))
                    (check ~path src))
            Lint_registry.all)
    files;
  (* typed domain-capture findings, restricted to the scanned set *)
  (match typed with
  | None -> ()
  | Some (_, typed_findings) ->
      let scanned = Hashtbl.create 64 in
      List.iter (fun f -> Hashtbl.replace scanned f ()) files;
      List.iter
        (fun (d : Lint_diag.t) ->
          if Hashtbl.mem scanned d.file then add d.file d)
        typed_findings);
  (* file-set rules *)
  let ml_files = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  List.iter
    (fun (rule : Lint_rule.t) ->
      match rule.check_files with
      | None -> ()
      | Some check ->
          List.iter
            (fun (path, msg) ->
              add path (Lint_diag.at_file_start ~file:path ~rule:rule.name ~msg))
            (check ~ml_files))
    Lint_registry.all;
  let diags = List.sort_uniq Lint_diag.compare !diags in
  (match !format with
  | Text -> List.iter (fun d -> print_endline (Lint_diag.to_text d)) diags
  | Github -> List.iter (fun d -> print_endline (Lint_diag.to_github d)) diags
  | Sarif ->
      let rules =
        List.map
          (fun (r : Lint_rule.t) -> (r.name, r.describe))
          Lint_registry.all
        @ [ ("parse-error", "file does not parse as OCaml") ]
      in
      print_string
        (Tool_report.sarif ~tool:"ccache_lint" ~version:"1.0" ~rules
           (List.map Lint_diag.to_report diags)));
  match diags with
  | [] -> ()
  | _ ->
      Printf.eprintf "ccache_lint: %d finding(s) in %d file(s) scanned\n"
        (List.length diags) (List.length files);
      exit 1
