(** ccache_lint — compiler-libs static analysis for the repo's
    conventions the type checker cannot see.

    Usage:
      ccache_lint [--format=text|github] [--allowlist FILE]
                  [--list-rules] PATH...

    Parses every [.ml]/[.mli] under the given paths (skipping [_build]
    and dot-directories) with compiler-libs [Parse], runs each
    registered rule, filters findings through [@lint.allow] spans and
    the allowlist, prints [file:line:col: [rule] message] diagnostics
    in deterministic order, and exits 1 iff any finding remains.
    Purely syntactic — no type information is needed, so files are
    linted without being compiled. *)

type format = Text | Github

let usage =
  "usage: ccache_lint [--format=text|github] [--allowlist FILE] \
   [--list-rules] PATH..."

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("ccache_lint: " ^ s); exit 2) fmt

(* ---- file discovery (sorted, so diagnostics are deterministic) ---- *)

let rec collect acc path =
  if not (Sys.file_exists path) then fail "no such file or directory: %s" path
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc name ->
           if name = "_build" || (name <> "" && name.[0] = '.') then acc
           else collect acc (Filename.concat path name))
         acc
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

(* ---- parsing ---- *)

let parse_file path : (Lint_rule.source, string) result =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Lexing.set_filename lexbuf path;
      try
        if Filename.check_suffix path ".mli" then
          Ok (Lint_rule.Intf (Parse.interface lexbuf))
        else Ok (Lint_rule.Impl (Parse.implementation lexbuf))
      with exn -> Error (Printexc.to_string exn))

(* ---- driver ---- *)

let () =
  let format = ref Text in
  let allowlist = ref [] in
  let paths = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--format=github" :: rest -> format := Github; parse_args rest
    | "--format=text" :: rest -> format := Text; parse_args rest
    | "--format" :: ("github" | "text") :: _ ->
        fail "use --format=github / --format=text"
    | "--allowlist" :: file :: rest ->
        allowlist := !allowlist @ Lint_suppress.load_allowlist file;
        parse_args rest
    | "--list-rules" :: _ ->
        List.iter
          (fun (r : Lint_rule.t) -> Printf.printf "%-18s %s\n" r.name r.describe)
          Lint_registry.all;
        exit 0
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
        fail "unknown option %s\n%s" s usage
    | p :: rest -> paths := p :: !paths; parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !paths = [] then fail "no paths given\n%s" usage;
  let files = List.fold_left collect [] (List.rev !paths) |> List.sort String.compare in
  let al = !allowlist in
  let diags = ref [] in
  let spans_by_file = Hashtbl.create 64 in
  let add path (d : Lint_diag.t) =
    let spans =
      Option.value (Hashtbl.find_opt spans_by_file path) ~default:[]
    in
    if
      (not
         (Lint_suppress.suppressed spans ~rule:d.rule ~cnum:d.cnum
            ~cend:d.cend))
      && not (Lint_suppress.allowlisted al ~rule:d.rule ~file:path)
    then diags := d :: !diags
  in
  (* per-file AST rules *)
  List.iter
    (fun path ->
      match parse_file path with
      | Error msg ->
          add path (Lint_diag.at_file_start ~file:path ~rule:"parse-error" ~msg)
      | Ok src ->
          Hashtbl.replace spans_by_file path (Lint_suppress.collect src);
          List.iter
            (fun (rule : Lint_rule.t) ->
              match rule.check_ast with
              | None -> ()
              | Some check ->
                  List.iter
                    (fun (f : Lint_rule.finding) ->
                      add path
                        (Lint_diag.make ~file:path ~rule:rule.name ~msg:f.msg
                           f.loc))
                    (check ~path src))
            Lint_registry.all)
    files;
  (* file-set rules *)
  let ml_files = List.filter (fun f -> Filename.check_suffix f ".ml") files in
  List.iter
    (fun (rule : Lint_rule.t) ->
      match rule.check_files with
      | None -> ()
      | Some check ->
          List.iter
            (fun (path, msg) ->
              add path (Lint_diag.at_file_start ~file:path ~rule:rule.name ~msg))
            (check ~ml_files))
    Lint_registry.all;
  let diags = List.sort_uniq Lint_diag.compare !diags in
  List.iter
    (fun d ->
      print_endline
        (match !format with
        | Text -> Lint_diag.to_text d
        | Github -> Lint_diag.to_github d))
    diags;
  match diags with
  | [] -> ()
  | _ ->
      Printf.eprintf "ccache_lint: %d finding(s) in %d file(s) scanned\n"
        (List.length diags) (List.length files);
      exit 1
