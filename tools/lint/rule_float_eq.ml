(** float-eq: exact equality on floats.

    The numeric theorem checks (Theorem 1.1/1.3 ratios, KKT residuals)
    accumulate rounding error, so [=] / [<>] / polymorphic [compare]
    on a float operand is almost always a latent bug — comparisons must
    go through [Ccache_util.Float_cmp].  Purely syntactic: an operand
    counts as float when it is a float literal, a [(e : float)]
    constraint, or an application of a float-arithmetic primitive.
    [Float.compare] / [Float.equal] (total orders) are not flagged. *)

open Parsetree

let cmp_ops = [ "="; "<>"; "=="; "!="; "compare" ]

let float_ops = [ "+."; "-."; "*."; "/."; "**"; "~-."; "~+." ]

let float_fns =
  [
    "float_of_int"; "sqrt"; "exp"; "log"; "log10"; "log1p"; "expm1"; "floor";
    "ceil"; "abs_float"; "mod_float"; "atan"; "atan2"; "cos"; "sin"; "tan";
  ]

(* [Float.*] functions that do NOT return float. *)
let float_mod_non_float =
  [
    "compare"; "equal"; "to_int"; "to_string"; "is_nan"; "is_finite";
    "is_integer"; "sign_bit"; "classify_float";
  ]

let rec is_floaty (e : expression) =
  match e.pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | Pexp_constraint
      (_, { ptyp_desc = Ptyp_constr ({ txt = Lident "float"; _ }, []); _ }) ->
      true
  | Pexp_constraint (e, _) -> is_floaty e
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match Lint_rule.lident_parts txt with
      | [ op ] | [ "Stdlib"; op ] ->
          List.mem op float_ops || List.mem op float_fns
      | [ "Float"; f ] | [ "Stdlib"; "Float"; f ] ->
          not (List.mem f float_mod_non_float)
      | _ -> false)
  | _ -> false

let is_cmp lid =
  match Lint_rule.lident_parts lid with
  | [ op ] | [ "Stdlib"; op ] -> List.mem op cmp_ops
  | _ -> false

let check ~path:_ src =
  let out = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt; _ }; _ }, ((_ :: _ :: _) as args))
            when is_cmp txt
                 && List.exists (fun (_, a) -> is_floaty a) args ->
              let op = String.concat "." (Lint_rule.lident_parts txt) in
              out :=
                Lint_rule.finding e.pexp_loc
                  (Printf.sprintf
                     "exact float comparison (%s) on a float operand; use \
                      Ccache_util.Float_cmp (approx_eq / approx_zero) or \
                      justify with [@lint.allow \"float-eq\"]"
                     op)
                :: !out
          | _ -> ());
          default_iterator.expr it e);
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_constant (Pconst_float _) ->
              out :=
                Lint_rule.finding p.ppat_loc
                  "float literal pattern is an exact equality match; branch \
                   with Ccache_util.Float_cmp instead"
                :: !out
          | _ -> ());
          default_iterator.pat it p);
    }
  in
  (match src with
  | Lint_rule.Impl s -> it.structure it s
  | Lint_rule.Intf s -> it.signature it s);
  List.rev !out

let rule =
  {
    Lint_rule.name = "float-eq";
    describe =
      "=/<>/compare on float operands must go through Ccache_util.Float_cmp";
    check_ast = Some check;
    check_files = None;
  }
