(** Suppression: [@lint.allow "rule"] attribute spans and the
    checked-in per-rule allowlist file.

    Three granularities:
    - [(expr [@lint.allow "rule"])] / [let f = ... [@@lint.allow "rule"]]
      silence one rule inside the attributed node;
    - a floating [[@@@lint.allow "rule"]] silences the rule for the
      whole file (the only way to suppress [mli-coverage] in-source);
    - an allowlist line [rule path/to/file.ml] silences a rule for a
      whole file without touching it ([#] starts a comment). *)

type scope = Whole_file | Span of int * int  (* [start, stop] char offsets *)
type t = (string * scope) list

let attr_name = "lint.allow"

let allows_of_attrs (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt attr_name then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            [ s ]
        | _ -> []
      else [])
    attrs

let span_of (loc : Location.t) =
  Span (loc.loc_start.pos_cnum, loc.loc_end.pos_cnum)

let collect (src : Lint_rule.source) : t =
  let acc = ref [] in
  let add rules scope = List.iter (fun r -> acc := (r, scope) :: !acc) rules in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a -> add (allows_of_attrs [ a ]) Whole_file
          | _ -> ());
          default_iterator.structure_item it si);
      signature_item =
        (fun it si ->
          (match si.psig_desc with
          | Psig_attribute a -> add (allows_of_attrs [ a ]) Whole_file
          | _ -> ());
          default_iterator.signature_item it si);
      value_binding =
        (fun it vb ->
          add (allows_of_attrs vb.pvb_attributes) (span_of vb.pvb_loc);
          default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          add (allows_of_attrs e.pexp_attributes) (span_of e.pexp_loc);
          default_iterator.expr it e);
      pat =
        (fun it p ->
          add (allows_of_attrs p.ppat_attributes) (span_of p.ppat_loc);
          default_iterator.pat it p);
      module_binding =
        (fun it mb ->
          add (allows_of_attrs mb.pmb_attributes) (span_of mb.pmb_loc);
          default_iterator.module_binding it mb);
    }
  in
  (match src with
  | Lint_rule.Impl s -> it.structure it s
  | Lint_rule.Intf s -> it.signature it s);
  !acc

(* Overlap, not containment: attributes bind tightly (in [c = 0.0
   [@lint.allow "r"]] the attribute lands on the literal), so an allow
   anywhere inside the flagged expression counts. *)
let suppressed (spans : t) ~rule ~cnum ~cend =
  List.exists
    (fun (r, scope) ->
      String.equal r rule
      &&
      match scope with
      | Whole_file -> true
      | Span (a, b) -> a <= cend && cnum <= b)
    spans

(* ---- allowlist file ---- *)

type allowlist = (string * string) list  (* (rule, path) *)

let load_allowlist path : allowlist =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun s -> s <> "")
           with
           | [] -> ()
           | [ rule; file ] -> entries := (rule, file) :: !entries
           | _ ->
               failwith
                 (Printf.sprintf "%s: malformed allowlist line %S" path line)
         done
       with End_of_file -> ());
      List.rev !entries)

(* Entries are repo-root-relative; accept both an exact match and a
   suffix match so the same allowlist works from any scan root. *)
let allowlisted (al : allowlist) ~rule ~file =
  List.exists
    (fun (r, p) ->
      String.equal r rule
      && (String.equal p file || String.ends_with ~suffix:("/" ^ p) file))
    al
