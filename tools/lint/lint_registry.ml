(** The rule registry.  Order is cosmetic only — diagnostics are
    sorted by location before printing. *)

let all : Lint_rule.t list =
  [
    Rule_no_random.rule;
    Rule_no_wall_clock.rule;
    Rule_float_eq.rule;
    Rule_no_print.rule;
    Rule_domain_capture.rule;
    Rule_mli_coverage.rule;
  ]
