(** no-print-in-lib: direct stdout printing inside [lib/].

    Experiment suites are diffed byte-for-byte across [--jobs] widths;
    stray prints from library code interleave nondeterministically with
    the collect-then-print pipeline.  All output must flow through
    [Report] / [Ascii_table] (the sanctioned sink is allowlisted). *)

open Parsetree

let banned =
  [
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "print_char" ];
    [ "print_int" ];
    [ "print_float" ];
    [ "Printf"; "printf" ];
  ]

let is_banned lid =
  let parts = Lint_rule.lident_parts lid in
  let parts =
    match parts with "Stdlib" :: rest -> rest | _ -> parts
  in
  List.exists (fun b -> parts = b) banned

let check ~path src =
  if not (Lint_rule.has_segment "lib" path) then []
  else begin
    let out = ref [] in
    let open Ast_iterator in
    let it =
      {
        default_iterator with
        expr =
          (fun it e ->
            (match e.pexp_desc with
            | Pexp_ident { txt; loc } when is_banned txt ->
                out :=
                  Lint_rule.finding loc
                    (Printf.sprintf
                       "direct stdout print (%s) in lib/; route output \
                        through Report / Ascii_table so suite reports stay \
                        byte-diffable"
                       (String.concat "." (Lint_rule.lident_parts txt)))
                  :: !out
            | _ -> ());
            default_iterator.expr it e);
      }
    in
    (match src with
    | Lint_rule.Impl s -> it.structure it s
    | Lint_rule.Intf s -> it.signature it s);
    List.rev !out
  end

let rule =
  {
    Lint_rule.name = "no-print-in-lib";
    describe = "lib/ code must not print to stdout; use Report/Ascii_table";
    check_ast = Some check;
    check_files = None;
  }
