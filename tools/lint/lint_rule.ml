(** The rule interface.

    A rule inspects either parsed ASTs (one file at a time) or the
    whole scanned file set (for filesystem-level checks such as
    mli-coverage).  Rules never filter their own findings: suppression
    ([@lint.allow] spans and the allowlist) is applied uniformly by the
    driver. *)

type source = Impl of Parsetree.structure | Intf of Parsetree.signature

type finding = { loc : Location.t; msg : string }

type t = {
  name : string;
  describe : string;  (** one line, shown by [--list-rules] *)
  check_ast : (path:string -> source -> finding list) option;
  check_files : (ml_files:string list -> (string * string) list) option;
      (** [(path, msg)] findings anchored at the start of [path]. *)
}

let finding loc msg = { loc; msg }

(** [has_segment "lib" "lib/util/stats.ml"] — path-component test used
    by the rules whose scope is a directory name, not a full path. *)
let has_segment seg path =
  List.exists (String.equal seg) (String.split_on_char '/' path)

let lident_parts (lid : Longident.t) = Longident.flatten lid
