(** domain-capture: a race-detector-lite for [Domain_pool] closures.

    A closure handed to [Domain_pool.parallel_map] / [parallel_iter] /
    [submit] / [map_list] runs on a worker domain.  Assigning ([:=],
    mutable-field [<-], [Array.set]-family sugar) to state bound
    *outside* the closure is therefore an unsynchronised cross-domain
    write — a data race under the OCaml 5 memory model.

    Scope approximation: every name bound by any pattern anywhere
    inside the closure (parameters, lets, match arms, inner funs)
    counts as local.  That over-approximates lexical scope, so the rule
    never false-positives on shadowing, at the cost of missing a
    mutation that precedes a later rebinding of the same name. *)

open Parsetree

let pool_fns = [ "parallel_map"; "parallel_iter"; "submit"; "map_list" ]

let pool_call fn =
  match fn.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match List.rev (Lint_rule.lident_parts txt) with
      | f :: qualifier
        when List.mem f pool_fns && List.mem "Domain_pool" qualifier ->
          Some f
      | _ -> None)
  | _ -> None

let rec is_fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_fun_literal e
  | _ -> false

let is_assign_op lid =
  match Lint_rule.lident_parts lid with
  | [ ":=" ] | [ "Stdlib"; ":=" ] -> true
  | _ -> false

(* a.(i) <- v / s.[i] <- v desugar to these at parse time *)
let is_indexed_set lid =
  match Lint_rule.lident_parts lid with
  | [ ("Array" | "Bytes" | "String"); "set" ]
  | [ "Stdlib"; ("Array" | "Bytes" | "String"); "set" ] ->
      true
  | _ -> false

let check_closure ~fname closure out =
  let bound = Hashtbl.create 16 in
  let open Ast_iterator in
  let collect =
    {
      default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
              Hashtbl.replace bound txt ()
          | _ -> ());
          default_iterator.pat it p);
    }
  in
  collect.expr collect closure;
  let local x = Hashtbl.mem bound x in
  let flag loc what =
    out :=
      Lint_rule.finding loc
        (Printf.sprintf
           "closure passed to Domain_pool.%s mutates %s bound outside the \
            closure: an unsynchronised cross-domain write (data race); \
            accumulate per-task results and combine after await instead"
           fname what)
      :: !out
  in
  let ident_name e =
    match e.pexp_desc with
    | Pexp_ident { txt; _ } ->
        Some (String.concat "." (Lint_rule.lident_parts txt))
    | _ -> None
  in
  let scan =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, lhs) :: _)
            when is_assign_op txt -> (
              match lhs.pexp_desc with
              | Pexp_ident { txt = Lident x; _ } when local x -> ()
              | _ ->
                  flag e.pexp_loc
                    (match ident_name lhs with
                    | Some x -> Printf.sprintf "ref '%s'" x
                    | None -> "a ref cell"))
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt; _ }; _ }, (_, recv) :: _)
            when is_indexed_set txt -> (
              match recv.pexp_desc with
              | Pexp_ident { txt = Lident x; _ } when local x -> ()
              | _ ->
                  flag e.pexp_loc
                    (match ident_name recv with
                    | Some x -> Printf.sprintf "array/bytes '%s'" x
                    | None -> "an array"))
          | Pexp_setfield (recv, fld, _) -> (
              match recv.pexp_desc with
              | Pexp_ident { txt = Lident x; _ } when local x -> ()
              | _ ->
                  flag e.pexp_loc
                    (Printf.sprintf "mutable field '%s'"
                       (String.concat "." (Lint_rule.lident_parts fld.txt))))
          | Pexp_setinstvar ({ txt; _ }, _) ->
              flag e.pexp_loc (Printf.sprintf "instance variable '%s'" txt)
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  scan.expr scan closure

let check ~path:_ src =
  let out = ref [] in
  let open Ast_iterator in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (fn, args) -> (
              match pool_call fn with
              | Some fname ->
                  List.iter
                    (fun (_, arg) ->
                      if is_fun_literal arg then check_closure ~fname arg out)
                    args
              | None -> ())
          | _ -> ());
          default_iterator.expr it e);
    }
  in
  (match src with
  | Lint_rule.Impl s -> it.structure it s
  | Lint_rule.Intf s -> it.signature it s);
  List.rev !out

let rule =
  {
    Lint_rule.name = "domain-capture";
    describe =
      "closures given to Domain_pool must not mutate state bound outside them";
    check_ast = Some check;
    check_files = None;
  }
