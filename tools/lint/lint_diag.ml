(** Location-tagged findings and the two output formats.

    Diagnostics render as [file:line:col: [rule] message] (text) or as
    GitHub Actions [::error] workflow commands ([--format=github]), so
    CI findings surface as inline PR annotations. *)

type t = {
  file : string;
  line : int;
  col : int;  (** 0-based, compiler convention *)
  cnum : int;  (** absolute start offset; used for suppression spans *)
  cend : int;  (** absolute end offset of the flagged node *)
  rule : string;
  msg : string;
}

let make ~file ~rule ~msg (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    cnum = p.Lexing.pos_cnum;
    cend = loc.Location.loc_end.Lexing.pos_cnum;
    rule;
    msg;
  }

let at_file_start ~file ~rule ~msg =
  { file; line = 1; col = 0; cnum = 0; cend = 0; rule; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_text d = Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.msg

let to_github d =
  Printf.sprintf "::error file=%s,line=%d,col=%d,title=ccache_lint %s::%s" d.file
    d.line d.col d.rule d.msg
