(** Location-tagged findings and their output formats.

    Diagnostics render as [file:line:col: [rule] message] (text), as
    GitHub Actions [::error] workflow commands ([--format=github]) so
    CI findings surface as inline PR annotations, or as a SARIF log
    ([--format=sarif]); all three go through {!Tool_report}, the
    reporting layer shared with [ccache_effects]. *)

type t = {
  file : string;
  line : int;
  col : int;  (** 0-based, compiler convention *)
  cnum : int;  (** absolute start offset; used for suppression spans *)
  cend : int;  (** absolute end offset of the flagged node *)
  rule : string;
  msg : string;
}

let make ~file ~rule ~msg (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    cnum = p.Lexing.pos_cnum;
    cend = loc.Location.loc_end.Lexing.pos_cnum;
    rule;
    msg;
  }

let at_file_start ~file ~rule ~msg =
  { file; line = 1; col = 0; cnum = 0; cend = 0; rule; msg }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

(* Rendering is delegated to the shared reporter so every dev tool
   emits byte-identical text/github lines and the same SARIF dialect. *)
let to_report d : Tool_report.finding =
  { file = d.file; line = d.line; col = d.col; rule = d.rule; msg = d.msg }

let to_text d = Tool_report.to_text (to_report d)
let to_github d = Tool_report.to_github ~tool:"ccache_lint" (to_report d)
