(** Shared finding/reporting layer for the repo's own dev tools
    ([ccache_lint], [ccache_effects]).

    One finding type, three emitters:
    - [to_text]: the classic [file:line:col: [rule] msg] line;
    - [to_github]: a GitHub Actions workflow command ([::error …]) that
      turns into an inline PR annotation;
    - [sarif]: a complete, minimal SARIF 2.1.0 document, the
      interchange format code-scanning UIs ingest.

    Everything is deterministic: emitters preserve the order findings
    are given in and allocate nothing surprising, so outputs are
    directly diffable in CI. *)

type finding = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based, compiler convention; SARIF emits [col + 1] *)
  rule : string;
  msg : string;
}

let compare_finding a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = compare a.line b.line in
    if c <> 0 then c
    else
      let c = compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.msg b.msg

let to_text f = Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.msg

(** [tool] becomes the annotation title prefix, e.g.
    [title=ccache_lint no-wallclock]. *)
let to_github ~tool f =
  Printf.sprintf "::error file=%s,line=%d,col=%d,title=%s %s::%s" f.file f.line
    f.col tool f.rule f.msg

(* ---- JSON ---- *)

(** Escape for a JSON string literal (no surrounding quotes). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(** A complete SARIF 2.1.0 log with a single run.  [rules] supplies
    driver metadata ([id], one-line description) for every rule id that
    may appear; findings referencing other ids are still valid SARIF
    (rule metadata is optional). *)
let sarif ~tool ~version ~rules (findings : finding list) =
  let b = Buffer.create 4096 in
  let add = Buffer.add_string b in
  add "{\n";
  add "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  add "  \"version\": \"2.1.0\",\n";
  add "  \"runs\": [\n    {\n";
  add "      \"tool\": {\n        \"driver\": {\n";
  Printf.ksprintf add "          \"name\": %S,\n" tool;
  Printf.ksprintf add "          \"version\": %S,\n" version;
  add "          \"rules\": [\n";
  List.iteri
    (fun i (id, desc) ->
      Printf.ksprintf add
        "            {\"id\": \"%s\", \"shortDescription\": {\"text\": \
         \"%s\"}}%s\n"
        (json_escape id) (json_escape desc)
        (if i = List.length rules - 1 then "" else ","))
    rules;
  add "          ]\n        }\n      },\n";
  add "      \"results\": [\n";
  List.iteri
    (fun i f ->
      Printf.ksprintf add
        "        {\"ruleId\": \"%s\", \"level\": \"error\", \"message\": \
         {\"text\": \"%s\"}, \"locations\": [{\"physicalLocation\": \
         {\"artifactLocation\": {\"uri\": \"%s\"}, \"region\": {\"startLine\": \
         %d, \"startColumn\": %d}}}]}%s\n"
        (json_escape f.rule) (json_escape f.msg) (json_escape f.file) f.line
        (max 1 (f.col + 1))
        (if i = List.length findings - 1 then "" else ","))
    findings;
  add "      ]\n    }\n  ]\n}\n";
  Buffer.contents b
