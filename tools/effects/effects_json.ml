(** The committed effect inventory (EFFECTS.json).

    One line per analysed node, sorted by id, so a behavioural change
    anywhere in the library shows up as a focused diff in review — the
    same promotion workflow as the BENCH_*.json files.

    The [alloc] field is a three-state verdict:
    - ["none"]: no allocation reaches the node even with every
      forgiveness mask stripped;
    - ["amortized"]: allocation-free under the masks the contracts use
      (amortised growth, cold error paths, obs-gated telemetry) but not
      without them — i.e. the masks are load-bearing;
    - ["allocates"]: allocation reaches the node on ordinary paths. *)

let esc = Tool_report.json_escape

let alloc_verdict masked raw =
  if Effect_set.mem masked Effect_set.Alloc then "allocates"
  else if Effect_set.mem raw Effect_set.Alloc then "amortized"
  else "none"

let emit (t : Effects_pipeline.t) : string =
  let b = Buffer.create (64 * 1024) in
  let add = Buffer.add_string b in
  let ids =
    Hashtbl.fold (fun id _ l -> id :: l) t.defs []
    |> List.sort String.compare
  in
  add "{\n";
  add "  \"version\": 1,\n";
  Printf.ksprintf add "  \"modules\": %d,\n" (List.length t.mods);
  Printf.ksprintf add "  \"functions\": %d,\n" (List.length ids);
  Printf.ksprintf add "  \"fixpoint_rounds\": %d,\n"
    t.result.Effects_graph.rounds;
  Printf.ksprintf add "  \"pool_sites\": %d,\n" (List.length t.pool_sites);
  add "  \"effects\": {\n";
  let n = List.length ids in
  List.iteri
    (fun i id ->
      let d = Hashtbl.find t.defs id in
      let masked = Effects_graph.effects t.result id in
      let raw = Effects_graph.effects t.raw id in
      Printf.ksprintf add "    \"%s\": {\"effects\": \"%s\", \"alloc\": \"%s\""
        (esc id)
        (esc (Effect_set.to_string masked))
        (alloc_verdict masked raw);
      if d.Effects_defs.contracts <> [] then
        Printf.ksprintf add ", \"contracts\": [%s]"
          (String.concat ", "
             (List.map
                (fun c -> Printf.sprintf "\"%s\"" (Effects_defs.contract_name c))
                d.Effects_defs.contracts));
      if not (Effect_set.is_empty d.Effects_defs.forgiven) then
        Printf.ksprintf add ", \"forgiven\": \"%s\""
          (esc (Effect_set.to_string d.Effects_defs.forgiven));
      Printf.ksprintf add "}%s\n" (if i = n - 1 then "" else ",");
      ())
    ids;
  add "  }\n";
  add "}\n";
  Buffer.contents b
