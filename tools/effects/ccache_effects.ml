(* Driver for the cross-module effect analysis.

   Reads the .cmt artifacts dune already produced under the given
   roots, runs the fixpoint, checks the hot-path contracts, and
   optionally writes the EFFECTS.json inventory.

   Exit codes: 0 clean, 1 contract findings, 2 usage/load error. *)

let usage =
  "ccache_effects --root DIR [options]\n\
   Typed cross-module effect & allocation analysis over dune's .cmt \
   artifacts.\n\n\
   \  --root DIR          scan DIR recursively for .cmt files (repeatable)\n\
   \  --json FILE         write the EFFECTS.json inventory to FILE\n\
   \  --format FMT        finding output: text (default), github, sarif\n\
   \  --inject SRC=CALLEE add a synthetic call edge before the fixpoint\n\
   \                      (mutation-testing hook)\n\
   \  --no-check          skip contract checking (inventory only)\n\
   \  --no-required       skip the required hot-path contract table\n\
   \                      (for analysing trees other than lib/)\n\
   \  --list-nodes        print every node id with its effect set\n\
   \  --list-externs      print unclassified extern paths the scan met\n\
   \  --help              this message\n"

let fail fmt =
  Printf.ksprintf
    (fun s ->
      prerr_endline ("ccache_effects: " ^ s);
      exit 2)
    fmt

type format = Text | Github | Sarif

let () =
  let roots = ref [] in
  let json_out = ref None in
  let format = ref Text in
  let inject = ref [] in
  let no_check = ref false in
  let no_required = ref false in
  let list_nodes = ref false in
  let list_externs = ref false in
  let rec parse = function
    | [] -> ()
    | "--root" :: dir :: rest ->
        roots := dir :: !roots;
        parse rest
    | "--json" :: file :: rest ->
        json_out := Some file;
        parse rest
    | "--format" :: fmt :: rest ->
        (format :=
           match fmt with
           | "text" -> Text
           | "github" -> Github
           | "sarif" -> Sarif
           | other -> fail "unknown format %S (text|github|sarif)" other);
        parse rest
    | "--inject" :: spec :: rest ->
        (match String.index_opt spec '=' with
        | Some i ->
            inject :=
              ( String.sub spec 0 i,
                String.sub spec (i + 1) (String.length spec - i - 1) )
              :: !inject
        | None -> fail "--inject expects SRC=CALLEE, got %S" spec);
        parse rest
    | "--no-check" :: rest ->
        no_check := true;
        parse rest
    | "--no-required" :: rest ->
        no_required := true;
        parse rest
    | "--list-nodes" :: rest ->
        list_nodes := true;
        parse rest
    | "--list-externs" :: rest ->
        list_externs := true;
        parse rest
    | ("--help" | "-help") :: _ ->
        print_string usage;
        exit 0
    | arg :: _ -> fail "unknown argument %S (try --help)" arg
  in
  parse (List.tl (Array.to_list Sys.argv));
  let roots = List.rev !roots in
  if roots = [] then fail "no --root given (try --help)";
  List.iter
    (fun r -> if not (Sys.file_exists r) then fail "root %s does not exist" r)
    roots;
  let t =
    try Effects_pipeline.analyze ~inject:(List.rev !inject) ~roots ()
    with e -> fail "analysis failed: %s" (Printexc.to_string e)
  in
  if Hashtbl.length t.defs = 0 then
    fail "no .cmt implementation units under %s (build the library first?)"
      (String.concat ", " roots);
  if !list_nodes then
    List.iter
      (fun id ->
        Printf.printf "%s: %s\n" id
          (Effect_set.to_string (Effects_graph.effects t.result id)))
      (Hashtbl.fold (fun id _ l -> id :: l) t.defs []
      |> List.sort String.compare);
  if !list_externs then
    List.iter print_endline (Effects_seed.unknown_externs ());
  (match !json_out with
  | Some file ->
      let oc = open_out file in
      output_string oc (Effects_json.emit t);
      close_out oc
  | None -> ());
  if !no_check then exit 0;
  let findings =
    Effects_pipeline.check ~check_required:(not !no_required) t
  in
  (match !format with
  | Text -> List.iter (fun f -> print_endline (Tool_report.to_text f)) findings
  | Github ->
      List.iter
        (fun f -> print_endline (Tool_report.to_github ~tool:"ccache_effects" f))
        findings
  | Sarif ->
      print_string
        (Tool_report.sarif ~tool:"ccache_effects" ~version:"1.0"
           ~rules:Effects_contract.rules findings));
  if findings <> [] then begin
    Printf.eprintf "ccache_effects: %d contract finding(s)\n"
      (List.length findings);
    exit 1
  end
