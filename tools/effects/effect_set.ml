(** The effect lattice: a finite powerset of primitive effect classes,
    represented as a bitmask so joins are [lor] and the fixpoint's
    monotonicity is immediate.

    Classes (see DESIGN.md §12 for the full semantics):
    - [Time]   — wall-clock reads ([Unix.gettimeofday], [Sys.time], …)
    - [Rand]   — stdlib [Random] state (breaks seeded determinism)
    - [Io]     — prints, channels, file descriptors, sleeps
    - [Gwrite] — unsynchronised writes to module-level mutable state
      (toplevel refs, arrays, hashtables; [Atomic] is exempt — it is
      the sanctioned synchronisation primitive)
    - [Spawn]  — creating domains or threads
    - [Alloc]  — heap allocation (boxed constructions, closures, or
      calls into allocating stdlib entry points)
    - [Hocall] — a call through an opaque function value (parameter,
      record field, …) that the call graph cannot resolve; recorded so
      a reader knows the set is a lower bound there *)

type cls = Time | Rand | Io | Gwrite | Spawn | Alloc | Hocall

type t = int

let all_classes = [ Time; Rand; Io; Gwrite; Spawn; Alloc; Hocall ]

let bit = function
  | Time -> 1
  | Rand -> 2
  | Io -> 4
  | Gwrite -> 8
  | Spawn -> 16
  | Alloc -> 32
  | Hocall -> 64

let name = function
  | Time -> "time"
  | Rand -> "rand"
  | Io -> "io"
  | Gwrite -> "gwrite"
  | Spawn -> "spawn"
  | Alloc -> "alloc"
  | Hocall -> "hocall"

let of_name = function
  | "time" -> Some Time
  | "rand" -> Some Rand
  | "io" -> Some Io
  | "gwrite" -> Some Gwrite
  | "spawn" -> Some Spawn
  | "alloc" -> Some Alloc
  | "hocall" -> Some Hocall
  | _ -> None

let empty = 0
let all = List.fold_left (fun acc c -> acc lor bit c) 0 all_classes
let is_empty s = s = 0
let singleton c = bit c
let add s c = s lor bit c
let mem s c = s land bit c <> 0
let union a b = a lor b
let diff a b = a land lnot b
let inter a b = a land b
let subset a b = a land lnot b = 0
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Int.compare a b

let of_list = List.fold_left add empty

let to_list s = List.filter (mem s) all_classes

(** ["time+alloc"]; the empty set prints as ["-"]. *)
let to_string s =
  match to_list s with
  | [] -> "-"
  | cs -> String.concat "+" (List.map name cs)

(** Parse a [+]/[,]/space-separated class list; [Error] names the first
    unknown class. *)
let parse spec =
  let parts =
    String.split_on_char '+' spec
    |> List.concat_map (String.split_on_char ',')
    |> List.concat_map (String.split_on_char ' ')
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok acc
    | p :: rest -> (
        match of_name p with
        | Some c -> go (add acc c) rest
        | None -> Error p)
  in
  go empty parts
