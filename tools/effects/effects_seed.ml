(** Primitive effect classes for external (stdlib / unix) entry points
    — the leaves the fixpoint propagates from.

    Paths arrive canonicalised (local module aliases expanded,
    [Lib__Module] rewritten to [Lib.Module]); a leading [Stdlib.] is
    stripped here.  Classification is an exact table first, then
    module-prefix defaults.  Unknown externs are treated as effect-free:
    the table's job is to cover the effect *sources*; an optimistic
    default keeps the analysis usable, and the per-class coverage is
    regression-pinned by the fixture tests.  [--list-externs] prints
    every unclassified extern a scan met, so gaps are visible rather
    than silent. *)

let strip_stdlib p =
  if String.length p > 7 && String.sub p 0 7 = "Stdlib." then
    String.sub p 7 (String.length p - 7)
  else p

let e = Effect_set.of_list

open Effect_set

(* ---- exact classifications ---- *)

let exact : (string * Effect_set.t) list =
  [
    (* wall clock *)
    ("Unix.gettimeofday", e [ Time ]);
    ("Unix.time", e [ Time ]);
    ("Unix.clock", e [ Time ]);
    ("Unix.times", e [ Time; Alloc ]);
    ("Unix.gmtime", e [ Time; Alloc ]);
    ("Unix.localtime", e [ Time; Alloc ]);
    ("Sys.time", e [ Time ]);
    (* sleeps: blocking syscalls, not clock reads *)
    ("Unix.sleep", e [ Io ]);
    ("Unix.sleepf", e [ Io ]);
    (* spawning *)
    ("Domain.spawn", e [ Spawn; Alloc ]);
    ("Domain.join", e [ Io ]);
    ("Thread.create", e [ Spawn; Alloc ]);
    (* formatted printing that only builds strings *)
    ("Printf.sprintf", e [ Alloc ]);
    ("Printf.ksprintf", e [ Alloc ]);
    ("Format.asprintf", e [ Alloc ]);
    ("Format.sprintf", e [ Alloc ]);
    (* allocation-free stdlib odds and ends that the prefix defaults
       below would otherwise misclassify *)
    ("Hashtbl.find", empty);
    ("Hashtbl.mem", empty);
    ("Hashtbl.length", empty);
    ("Hashtbl.iter", empty);
    ("Hashtbl.hash", empty);
    ("Buffer.length", empty);
    ("Buffer.clear", empty);
    ("Queue.length", empty);
    ("Queue.is_empty", empty);
    ("Queue.iter", empty);
    ("Stack.length", empty);
    ("Stack.is_empty", empty);
    ("Atomic.make", e [ Alloc ]);
    (* Sys state reads *)
    ("Sys.getenv", e [ Io ]);
    ("Sys.getenv_opt", e [ Io; Alloc ]);
    ("Sys.command", e [ Io ]);
    ("Sys.remove", e [ Io ]);
    ("Sys.rename", e [ Io ]);
    ("Sys.file_exists", e [ Io ]);
    ("Sys.is_directory", e [ Io ]);
    ("Sys.readdir", e [ Io; Alloc ]);
    ("Sys.argv", empty);
    (* exit is observable *)
    ("exit", e [ Io ]);
  ]

(* ---- error-path helpers: allocation on a path that never returns is
   invisible to steady-state budgets, so callers do not inherit it.
   ([raise] itself allocates nothing; the payload construction is
   seeded at the construction site, which sits on the same dead
   path — see the [\[@effects.allow\]] escape in DESIGN.md §12.) ---- *)

let cold : string list =
  [ "invalid_arg"; "failwith"; "raise"; "raise_notrace"; "assert_failure" ]

(* ---- allocation-free members of otherwise-allocating modules ---- *)

let no_alloc_members =
  [
    ("List.",
     [ "iter"; "iteri"; "fold_left"; "length"; "mem"; "memq"; "exists";
       "for_all"; "hd"; "tl"; "nth"; "compare_lengths"; "compare_length_with";
       "iter2"; "fold_left2"; "exists2"; "for_all2"; "mem_assoc" ]);
    ("Array.",
     [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length"; "iter"; "iteri";
       "fold_left"; "fold_right"; "blit"; "fill"; "exists"; "for_all";
       "mem"; "memq"; "sort"; "iter2" ]);
    ("Float.Array.",
     [ "get"; "set"; "unsafe_get"; "unsafe_set"; "length"; "iter"; "iteri";
       "fold_left"; "blit"; "fill"; "exists"; "for_all"; "mem"; "sort" ]);
    ("String.",
     [ "length"; "get"; "unsafe_get"; "compare"; "equal"; "contains";
       "contains_from"; "rcontains_from"; "index"; "rindex"; "index_from";
       "iter"; "iteri"; "for_all"; "exists"; "starts_with"; "ends_with";
       "blit" ]);
    ("Bytes.",
     [ "length"; "get"; "set"; "unsafe_get"; "unsafe_set"; "blit";
       "blit_string"; "fill"; "unsafe_blit"; "unsafe_fill" ]);
    ("Option.", [ "value"; "get"; "is_some"; "is_none"; "iter"; "fold";
                  "equal"; "compare" ]);
    ("Result.", [ "is_ok"; "is_error"; "get_ok"; "get_error"; "iter";
                  "iter_error"; "fold" ]);
    ("Either.", [ "is_left"; "is_right"; "fold"; "iter" ]);
    ("Atomic.",
     [ "get"; "set"; "exchange"; "compare_and_set"; "fetch_and_add"; "incr";
       "decr" ]);
    ("Domain.DLS.", [ "get"; "set" ]);
    ("Float.", [ "abs"; "max"; "min"; "compare"; "equal"; "is_nan";
                 "is_finite"; "is_integer"; "of_int"; "to_int"; "round";
                 "trunc"; "rem"; "fma"; "succ"; "pred"; "sign_bit" ]);
    ("Int.", [ "abs"; "max"; "min"; "compare"; "equal"; "shift_left";
               "shift_right"; "logand"; "logor"; "logxor"; "lognot";
               "to_float"; "of_float"; "succ"; "pred" ]);
    ("Char.", [ "code"; "chr"; "compare"; "equal"; "lowercase_ascii";
                "uppercase_ascii" ]);
    ("Fun.", [ "id"; "flip"; "negate"; "protect" ]);
  ]

(* module prefixes whose *other* members default to [Alloc] *)
let allocating_prefixes =
  [ "List."; "Array."; "Float.Array."; "String."; "Bytes."; "Option.";
    "Result."; "Either."; "Seq."; "Map."; "Set."; "Buffer."; "Queue.";
    "Stack."; "Lazy."; "Int64."; "Int32."; "Nativeint."; "Marshal.";
    "Digest."; "Filename."; "Scanf."; "Str."; "Hashtbl."; "Fun.";
    "Domain.DLS."; "Gc."; "Obj."; "Printexc."; "Lexing."; "Parsing." ]

(* channel / console I/O *)
let io_exact =
  [ "print_string"; "print_endline"; "print_newline"; "print_int";
    "print_float"; "print_char"; "print_bytes"; "prerr_string";
    "prerr_endline"; "prerr_newline"; "prerr_int"; "prerr_float";
    "prerr_char"; "prerr_bytes"; "read_line"; "read_int"; "read_int_opt";
    "read_float"; "read_float_opt"; "open_in"; "open_in_bin"; "open_in_gen";
    "open_out"; "open_out_bin"; "open_out_gen"; "close_in"; "close_in_noerr";
    "close_out"; "close_out_noerr"; "input_line"; "input_char"; "input_byte";
    "input_value"; "input"; "really_input"; "really_input_string";
    "output_string"; "output_bytes"; "output_char"; "output_byte";
    "output_value"; "output_substring"; "output"; "flush"; "flush_all";
    "pos_in"; "pos_out"; "seek_in"; "seek_out"; "in_channel_length";
    "out_channel_length"; "set_binary_mode_in"; "set_binary_mode_out" ]

(* ---- mutator table: callee path -> 0-based index of the positional
   argument it mutates (used for the global-write check) ---- *)

let mutators : (string * int) list =
  [
    (":=", 0);
    ("Array.set", 0); ("Array.unsafe_set", 0); ("Array.fill", 0);
    ("Array.blit", 2); ("Array.sort", 1);
    ("Float.Array.set", 0); ("Float.Array.unsafe_set", 0);
    ("Float.Array.fill", 0); ("Float.Array.blit", 2);
    ("Bytes.set", 0); ("Bytes.unsafe_set", 0); ("Bytes.fill", 0);
    ("Bytes.blit", 2); ("Bytes.blit_string", 2);
    ("Hashtbl.add", 0); ("Hashtbl.replace", 0); ("Hashtbl.remove", 0);
    ("Hashtbl.reset", 0); ("Hashtbl.clear", 0); ("Hashtbl.filter_map_inplace", 1);
    ("Buffer.add_string", 0); ("Buffer.add_char", 0); ("Buffer.add_bytes", 0);
    ("Buffer.add_substring", 0); ("Buffer.add_buffer", 0);
    ("Buffer.clear", 0); ("Buffer.reset", 0); ("Buffer.truncate", 0);
    ("Queue.push", 1); ("Queue.add", 1); ("Queue.pop", 0); ("Queue.take", 0);
    ("Queue.clear", 0); ("Queue.transfer", 0);
    ("Stack.push", 1); ("Stack.pop", 0); ("Stack.clear", 0);
    ("incr", 0); ("decr", 0);
  ]

let mutated_arg path = List.assoc_opt (strip_stdlib path) mutators

let tbl = Hashtbl.create 512

let () =
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) exact;
  List.iter (fun k -> Hashtbl.replace tbl k empty) cold;
  List.iter (fun k -> Hashtbl.replace tbl k (e [ Io ])) io_exact;
  List.iter
    (fun (prefix, members) ->
      List.iter
        (fun m ->
          let k = prefix ^ m in
          if not (Hashtbl.mem tbl k) then Hashtbl.replace tbl k empty)
        members)
    no_alloc_members

let is_cold path = List.mem (strip_stdlib path) cold

let has_prefix p s = String.length s >= String.length p
                     && String.sub s 0 (String.length p) = p

(** Unknown externs seen during a scan, for [--list-externs]. *)
let unknown : (string, unit) Hashtbl.t = Hashtbl.create 64

(** Classify a canonical extern path.  Only called for paths that did
    not resolve to a graph node. *)
let classify path : Effect_set.t =
  let p = strip_stdlib path in
  match Hashtbl.find_opt tbl p with
  | Some s -> s
  | None ->
      if has_prefix "Random." p then e [ Rand; Alloc ]
      else if has_prefix "Unix." p then e [ Io; Alloc ]
      else if has_prefix "Printf." p || has_prefix "Format." p
              || has_prefix "Fmt." p || has_prefix "In_channel." p
              || has_prefix "Out_channel." p then e [ Io; Alloc ]
      else if p = "^" || p = "@" then e [ Alloc ]
      else if p = "ref" || p = "!" then
        (* [ref]: the native compiler unboxes refs that stay local (the
           repo's standard mutable-loop idiom — probe/sift/fold cells),
           so seeding [alloc] here would poison every hot path with a
           false positive.  Escaping refs are the known blind spot; the
           dynamic Gc byte-budget tests own that residual. *)
        empty
      else if List.exists (fun pr -> has_prefix pr p) allocating_prefixes then
        e [ Alloc ]
      else begin
        (* operators, conversions, comparisons, …: effect-free *)
        if String.length p > 0
           && (p.[0] >= 'A' && p.[0] <= 'Z')
           && String.contains p '.'
        then Hashtbl.replace unknown p ();
        empty
      end

let unknown_externs () =
  Hashtbl.fold (fun k () l -> k :: l) unknown [] |> List.sort String.compare
