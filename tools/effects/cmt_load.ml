(** Discovery and loading of [.cmt] artifacts.

    Dune emits a [.cmt] next to every compiled module under
    [<dir>/.<lib>.objs/byte/]; we scan the given roots for them,
    decode with [Cmt_format.read_cmt] (same compiler that produced
    them, so no magic-number drift), and keep implementation units
    with a source file.  Dune-generated library alias modules
    ([*.ml-gen]) carry no code of their own and are skipped.

    Module names canonicalise the wrapped-library mangling:
    [Ccache_core__Alg_fast] → [Ccache_core.Alg_fast], which is exactly
    the path form the use sites record (after local-alias expansion),
    so definition and reference keys line up. *)

type unit_ = {
  modname : string;  (** canonical, e.g. ["Ccache_core.Alg_fast"] *)
  source : string;  (** compiler-recorded source path, build-root-relative *)
  structure : Typedtree.structure;
}

(** [Lib__Module] → [Lib.Module]; leaves single underscores alone. *)
let canonical_modname m =
  let b = Buffer.create (String.length m) in
  let n = String.length m in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && m.[!i] = '_' && m.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b m.[!i];
      incr i
    end
  done;
  Buffer.contents b

let rec find_cmts acc path =
  if not (Sys.file_exists path) then acc
  else if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left (fun acc name -> find_cmts acc (Filename.concat path name)) acc
  else if Filename.check_suffix path ".cmt" then path :: acc
  else acc

let load_file path : unit_ option =
  match Cmt_format.read_cmt path with
  | exception _ -> None
  | cmt -> (
      match (cmt.cmt_annots, cmt.cmt_sourcefile) with
      | Cmt_format.Implementation structure, Some source
        when not (Filename.check_suffix source ".ml-gen") ->
          Some { modname = canonical_modname cmt.cmt_modname; source; structure }
      | _ -> None)

(** All implementation units under [roots], sorted by canonical module
    name so every downstream artifact is deterministic. *)
let load_roots roots : unit_ list =
  List.fold_left find_cmts [] roots
  |> List.sort String.compare
  |> List.filter_map load_file
  |> List.sort (fun a b -> String.compare a.modname b.modname)
