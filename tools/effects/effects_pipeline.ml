(** End-to-end analysis: cmt discovery → definition collection → body
    extraction → call graph → fixpoint (twice: once honouring every
    mask, once with all masks stripped — the delta is what the
    forgiveness annotations are hiding, reported as the "amortized"
    verdict in EFFECTS.json). *)

type t = {
  mods : Effects_defs.modinfo list;
  defs : (string, Effects_defs.def) Hashtbl.t;  (** node id → def *)
  graph : Effects_graph.t;
  result : Effects_graph.result;  (** masked (the contract semantics) *)
  raw : Effects_graph.result;  (** every mask stripped *)
  pool_sites : Effects_extract.pool_site list;
}

let extern = Effects_seed.classify

(** [inject] adds synthetic call edges (["Src=Callee"] pairs) before
    the fixpoint runs — the hook the seeded mutation test drives to
    prove a smuggled clock read is caught. *)
let analyze ?(inject = []) ~roots () : t =
  let units = Cmt_load.load_roots roots in
  let mods = List.map Effects_defs.collect units in
  let defs = Hashtbl.create 512 in
  List.iter
    (fun (mi : Effects_defs.modinfo) ->
      List.iter
        (fun (d : Effects_defs.def) ->
          if not (Hashtbl.mem defs d.id) then Hashtbl.replace defs d.id d)
        mi.defs)
    mods;
  let node_forgiven id =
    Option.map
      (fun (d : Effects_defs.def) -> d.forgiven)
      (Hashtbl.find_opt defs id)
  in
  let pool_sites = ref [] in
  (* Plain values keep their (one-shot, module-init) effects in their
     own outward set but charge none of it to readers: referencing a
     toplevel table does not re-run its initialiser.  This masking is a
     semantic correction, so (unlike the annotation masks) it survives
     in the raw fixpoint below. *)
  let pairs =
    List.concat_map
      (fun (mi : Effects_defs.modinfo) ->
        List.map
          (fun (d : Effects_defs.def) ->
            let ex = Effects_extract.extract ~mi ~def:d ~node_forgiven in
            pool_sites := ex.pool_sites @ !pool_sites;
            ( d,
              {
                Effects_graph.id = d.id;
                seed = ex.seed;
                forgiven = (if d.arrow then d.forgiven else Effect_set.all);
                calls = ex.calls;
              } ))
          mi.defs)
      mods
  in
  let nodes = List.map snd pairs in
  let graph = Effects_graph.of_nodes nodes in
  List.iter
    (fun (src, callee) -> Effects_graph.add_call graph ~src ~callee)
    inject;
  let result = Effects_graph.fixpoint ~extern graph in
  let raw =
    (* annotation masks stripped; value masking retained *)
    let stripped =
      Effects_graph.of_nodes
        (List.map
           (fun ((d : Effects_defs.def), (n : Effects_graph.node)) ->
             {
               n with
               forgiven =
                 (if d.arrow then Effect_set.empty else Effect_set.all);
               calls = List.map (fun (c, _) -> (c, Effect_set.empty)) n.calls;
             })
           pairs)
    in
    List.iter
      (fun (src, callee) -> Effects_graph.add_call stripped ~src ~callee)
      inject;
    Effects_graph.fixpoint ~extern stripped
  in
  {
    mods;
    defs;
    graph;
    result;
    raw;
    pool_sites = List.rev !pool_sites;
  }

let check ?(check_required = true) (t : t) : Tool_report.finding list =
  Effects_contract.check ~check_required ~defs:t.defs ~graph:t.graph
    ~result:t.result ~extern ~pool_sites:t.pool_sites
