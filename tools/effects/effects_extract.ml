(** Body analysis: walk a definition's typedtree and produce its seed
    effects plus its (masked) call edges.

    Allocation seeds are syntactic constructions of boxed values
    (tuples, records, non-constant constructors, array literals,
    variants with payloads, closures, lazy/object/first-class-module
    values); allocating stdlib entry points arrive through the extern
    oracle instead.  Float (un)boxing at function boundaries is below
    the typedtree's resolution and is out of scope — the Gc byte-budget
    tests remain the ground truth there (DESIGN.md §12).

    Masking, applied to both seeds and the edges recorded under it:
    - [\[@effects.allow "cls…"\]] on any expression;
    - the obs-gating idiom: the recording branch of
      [if Ccache_obs.Control.enabled () then …] (or the [else] of
      [if not (enabled ()) …]) is masked [alloc]+[io] — the
      off-vs-on byte-identity CI gate owns that path;
    - arguments of a cold call ([invalid_arg], [failwith], or any node
      marked [\[@@effects.cold\]]): message construction on a path
      that never returns.

    A call whose head is not a resolvable path (a parameter, a record
    field like [h.Policy.on_hit]) seeds [hocall]: the set is a lower
    bound there, which is why the dynamic equivalence gates stay. *)

open Typedtree

type pool_site = {
  site_fn : string;  (** Domain_pool entry point invoked *)
  site_loc : Location.t;
  site_source : string;
  site_in : string;  (** enclosing node id *)
  site_seed : Effect_set.t;  (** closure's direct seeds *)
  site_calls : (string * Effect_set.t) list;
  site_captured : string list;
      (** idents bound outside the closure that it mutates directly *)
}

type extraction = {
  seed : Effect_set.t;
  calls : (string * Effect_set.t) list;  (** callee, mask on that edge *)
  pool_sites : pool_site list;
}

let pool_fns =
  [ "submit"; "parallel_map"; "parallel_iter"; "map_list"; "map_blocks" ]

let is_pool_call canonical =
  match String.rindex_opt canonical '.' with
  | None -> None
  | Some i ->
      let fn = String.sub canonical (i + 1) (String.length canonical - i - 1) in
      if
        List.mem fn pool_fns
        && String.length canonical > i
        && String.sub canonical 0 i |> fun m ->
           m = "Ccache_util.Domain_pool"
           || (String.length m >= 11
              && String.sub m (String.length m - 11) 11 = "Domain_pool")
      then Some fn
      else None

(** Does [e] mention [Ccache_obs.Control.enabled]?  (the obs-gate
    condition test; [negated] reports an enclosing [not]) *)
let rec obs_gate canonical_of e =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
      let name = Effects_seed.strip_stdlib (canonical_of p) in
      match name with
      | "not" -> (
          match
            List.find_map
              (fun (_, a) -> Option.map (obs_gate canonical_of) a)
              args
          with
          | Some (Some _) -> Some true
          | _ -> None)
      | "Ccache_obs.Control.enabled" -> Some false
      | "&&" | "||" ->
          List.find_map
            (fun (_, a) ->
              match a with
              | Some a -> obs_gate canonical_of a
              | None -> None)
            args
      | _ -> None)
  | Texp_ident (p, _, _) when canonical_of p = "Ccache_obs.Control.enabled" ->
      Some false
  | _ -> None

let obs_mask =
  Effect_set.of_list [ Effect_set.Alloc; Effect_set.Io ]

(** [extract] analyses the bodies of [def] from module [mi].

    [node_forgiven id] looks up the caller-side mask of an already
    collected node (any module), used for cold-call argument masking.
    [global id] tells whether a [Pident] target is module-level
    state. *)
let extract ~(mi : Effects_defs.modinfo) ~(def : Effects_defs.def)
    ~(node_forgiven : string -> Effect_set.t option) : extraction =
  let seeds = ref Effect_set.empty in
  let calls = ref [] in
  let pool_sites = ref [] in
  let canonical_of p =
    let name = Path.name p in
    match String.index_opt name '.' with
    | None -> (
        match Hashtbl.find_opt mi.aliases name with
        | Some c -> c
        | None -> name)
    | Some i ->
        let head = String.sub name 0 i in
        let rest = String.sub name i (String.length name - i) in
        let head =
          match Hashtbl.find_opt mi.aliases head with
          | Some c -> c
          | None -> Cmt_load.canonical_modname head
        in
        head ^ rest
  in
  (* closure-capture scope for the pool-site check: [None] outside a
     pool closure; [Some tbl] = idents bound inside it *)
  let capture_scope : (string, unit) Hashtbl.t option ref = ref None in
  let captured = ref [] in
  let mask = ref Effect_set.empty in
  let seed cls =
    if not (Effect_set.mem !mask cls) then
      seeds := Effect_set.add !seeds cls
  in
  let call callee = calls := (callee, !mask) :: !calls in
  let is_global id = Hashtbl.mem mi.globals (Ident.unique_name id) in
  let local_node id = Hashtbl.find_opt mi.locals (Ident.unique_name id) in
  let is_param id = Hashtbl.mem def.params (Ident.unique_name id) in
  let bound_in_scope id =
    match !capture_scope with
    | None -> true
    | Some tbl -> Hashtbl.mem tbl (Ident.unique_name id)
  in
  (* a write to [target]: global-write effect if the target is
     module-level state (or another module's value); inside a pool
     closure, a *local* target bound outside the closure is a capture.
     Module-level targets are gwrite only — [pool-task-global-write]
     owns them, and double-reporting one write under both rules would
     just be noise. *)
  let write_target (e : expression) =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) ->
        if is_global id then seed Effect_set.Gwrite
        else if not (bound_in_scope id) then
          captured := Ident.name id :: !captured
    | Texp_ident (_, _, _) -> seed Effect_set.Gwrite
    | _ -> ()
  in
  let cold_callee canonical =
    Effects_seed.is_cold canonical
    ||
    match node_forgiven canonical with
    | Some f ->
        Effect_set.mem f Effect_set.Alloc && Effect_set.mem f Effect_set.Io
    | None -> false
  in
  let rec walk e =
    let extra_mask = Effects_defs.allow_mask e.exp_attributes in
    if Effect_set.is_empty extra_mask then walk_desc e
    else begin
      let saved = !mask in
      mask := Effect_set.union saved extra_mask;
      walk_desc e;
      mask := saved
    end
  and with_mask m f =
    let saved = !mask in
    mask := Effect_set.union saved m;
    f ();
    mask := saved
  and walk_case : type k. k case -> unit =
   fun c ->
    Option.iter walk c.c_guard;
    walk c.c_rhs
  and walk_default e =
    (* generic recursion into children for shapes [walk_desc] does not
       special-case *)
    let open Tast_iterator in
    let it =
      {
        default_iterator with
        expr = (fun _ child -> walk child);
        value_binding =
          (fun _ vb ->
            match Effects_defs.binding_ident vb.vb_pat with
            | Some (id, _) when local_node id <> None ->
                (* registered sub-definition: its body is analysed as
                   its own node; here it contributes a may-call edge
                   and the closure allocation *)
                seed Effect_set.Alloc;
                call (Option.get (local_node id))
            | _ -> walk vb.vb_expr);
      }
    in
    default_iterator.expr it { e with exp_attributes = [] }
  and walk_desc e =
    match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
        match local_node id with
        | Some node -> call node
        | None -> ())
    | Texp_ident (p, _, _) -> call (canonical_of p)
    | Texp_function _ ->
        seed Effect_set.Alloc;
        walk_default e
    | Texp_tuple _ ->
        seed Effect_set.Alloc;
        walk_default e
    | Texp_record _ ->
        seed Effect_set.Alloc;
        walk_default e
    | Texp_array _ ->
        seed Effect_set.Alloc;
        walk_default e
    | Texp_construct (_, _, args) ->
        if args <> [] then seed Effect_set.Alloc;
        walk_default e
    | Texp_variant (_, Some _) ->
        seed Effect_set.Alloc;
        walk_default e
    | Texp_lazy _ | Texp_object _ | Texp_pack _ ->
        seed Effect_set.Alloc;
        walk_default e
    | Texp_setfield (recv, _, _, v) ->
        write_target recv;
        walk recv;
        walk v
    | Texp_ifthenelse (cond, then_, else_) -> (
        match obs_gate canonical_of cond with
        | Some negated ->
            walk cond;
            if negated then begin
              (* [if not (enabled ()) then hot else obs] *)
              walk then_;
              Option.iter (fun e -> with_mask obs_mask (fun () -> walk e)) else_
            end
            else begin
              with_mask obs_mask (fun () -> walk then_);
              Option.iter walk else_
            end
        | None ->
            walk cond;
            walk then_;
            Option.iter walk else_)
    | Texp_apply (head, args) -> (
        let walk_args () =
          List.iter (fun (_, a) -> Option.iter walk a) args
        in
        match head.exp_desc with
        | Texp_ident (path, _, _) -> (
            let is_param_head =
              match path with Path.Pident id -> is_param id | _ -> false
            in
            if is_param_head then begin
              seed Effect_set.Hocall;
              walk_args ()
            end
            else begin
              let callee =
                match path with
                | Path.Pident id -> (
                    match local_node id with
                    | Some node -> Some node
                    | None ->
                        (* a plain local value of function type *)
                        seed Effect_set.Hocall;
                        None)
                | _ -> Some (canonical_of path)
              in
              (match callee with Some c -> call c | None -> ());
              (* global-write through a known mutator *)
              (match callee with
              | Some c -> (
                  match Effects_seed.mutated_arg c with
                  | Some idx -> (
                      let positional =
                        List.filter_map
                          (fun (lbl, a) ->
                            match lbl with
                            | Asttypes.Nolabel -> a
                            | _ -> None)
                          args
                      in
                      match List.nth_opt positional idx with
                      | Some target -> write_target target
                      | None -> ())
                  | None -> ())
              | None -> ());
              (* pool closure: analyse each literal function argument
                 in its own capture scope *)
              (match callee with
              | Some c -> (
                  match is_pool_call c with
                  | Some fn ->
                      List.iter
                        (fun (_, a) ->
                          match a with
                          | Some ({ exp_desc = Texp_function _; _ } as clo) ->
                              pool_closure fn clo
                          | _ -> ())
                        args
                  | None -> ())
              | None -> ());
              let cold =
                match callee with Some c -> cold_callee c | None -> false
              in
              if cold then
                with_mask
                  (Effect_set.of_list [ Effect_set.Alloc; Effect_set.Io ])
                  walk_args
              else walk_args ()
            end)
        | _ ->
            seed Effect_set.Hocall;
            walk head;
            walk_args ())
    | Texp_match (scrut, cases, _) ->
        walk scrut;
        List.iter walk_case cases
    | Texp_try (body, cases) ->
        walk body;
        List.iter walk_case cases
    | _ -> walk_default e
  and pool_closure fn (clo : expression) =
    (* record the closure's own seeds/calls separately so the checker
       can ask "what does this task transitively do?" *)
    let saved_seeds = !seeds
    and saved_calls = !calls
    and saved_scope = !capture_scope
    and saved_captured = !captured
    and saved_mask = !mask in
    seeds := Effect_set.empty;
    calls := [];
    captured := [];
    mask := Effect_set.empty;
    let bound = Hashtbl.create 16 in
    let open Tast_iterator in
    let binder =
      {
        default_iterator with
        pat =
          (fun (type k) it (p : k general_pattern) ->
            (match p.pat_desc with
            | Tpat_var (id, _) ->
                Hashtbl.replace bound (Ident.unique_name id) ()
            | Tpat_alias (_, id, _) ->
                Hashtbl.replace bound (Ident.unique_name id) ()
            | _ -> ());
            default_iterator.pat it p);
      }
    in
    binder.expr binder clo;
    capture_scope := Some bound;
    walk clo;
    let site =
      {
        site_fn = fn;
        site_loc = clo.exp_loc;
        site_source = def.source;
        site_in = def.id;
        site_seed = Effect_set.diff !seeds (Effect_set.singleton Effect_set.Alloc);
        site_calls = !calls;
        site_captured = List.sort_uniq String.compare !captured;
      }
    in
    pool_sites := site :: !pool_sites;
    (* the closure's effects also belong to the enclosing definition *)
    seeds := Effect_set.union saved_seeds !seeds;
    calls := saved_calls @ !calls;
    capture_scope := saved_scope;
    captured := saved_captured;
    mask := saved_mask
  in
  List.iter walk def.bodies;
  {
    seed = !seeds;
    calls = List.sort_uniq compare !calls;
    pool_sites = !pool_sites;
  }
