(** Whole-library call graph and the monotone effect fixpoint.

    A node is one analysed definition (toplevel or named local
    function).  [seed] holds the effects its own body performs
    directly; [calls] the canonical ids of everything it may invoke,
    each with the mask active at that call site ([\[@effects.allow\]]
    scopes, obs-gated branches, cold-call arguments).  Callees that are
    not nodes are classified by the [extern] oracle (the seed table for
    stdlib/unix leaves).

    [forgiven] is the per-node caller-side mask: a node annotated
    [\[@@effects.amortized_alloc\]] keeps [alloc] in its own outward
    set but callers do not inherit it (growth paths of amortised
    structures), and [\[@@effects.cold\]] masks [alloc]+[io] the same
    way (unconditional error/raise paths).  Masking is applied on the
    edge, so the fixpoint stays monotone in the edge set: adding a
    call can only grow every reachable effect set (property-tested in
    [test/test_effects.ml]). *)

type node = {
  id : string;
  seed : Effect_set.t;
  forgiven : Effect_set.t;  (** masked out of what callers inherit *)
  calls : (string * Effect_set.t) list;  (** callee, per-edge mask *)
}

type t = {
  nodes : (string, node) Hashtbl.t;
  order : string list;  (** insertion order, for deterministic iteration *)
}

let create () = { nodes = Hashtbl.create 512; order = [] }

let of_nodes nodes =
  let t = Hashtbl.create (2 * List.length nodes + 1) in
  List.iter
    (fun n ->
      match Hashtbl.find_opt t n.id with
      | None -> Hashtbl.replace t n.id n
      | Some prev ->
          (* duplicate id (shadowed binding): join conservatively *)
          Hashtbl.replace t n.id
            {
              prev with
              seed = Effect_set.union prev.seed n.seed;
              forgiven = Effect_set.inter prev.forgiven n.forgiven;
              calls = prev.calls @ n.calls;
            })
    nodes;
  { nodes = t; order = List.map (fun n -> n.id) nodes }

let mem t id = Hashtbl.mem t.nodes id
let find_opt t id = Hashtbl.find_opt t.nodes id

let ids t =
  List.sort_uniq String.compare (Hashtbl.fold (fun id _ l -> id :: l) t.nodes [])

(** Add one call edge (the mutation hook used by [--inject] tests);
    unknown [src] is created as a fresh effect-free node. *)
let add_call t ~src ~callee =
  let edge = (callee, Effect_set.empty) in
  match Hashtbl.find_opt t.nodes src with
  | Some n -> Hashtbl.replace t.nodes src { n with calls = edge :: n.calls }
  | None ->
      Hashtbl.replace t.nodes src
        { id = src; seed = Effect_set.empty; forgiven = Effect_set.empty;
          calls = [ edge ] }

let add_seed t ~id cls =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> Hashtbl.replace t.nodes id { n with seed = Effect_set.add n.seed cls }
  | None ->
      Hashtbl.replace t.nodes id
        { id; seed = Effect_set.singleton cls; forgiven = Effect_set.empty;
          calls = [] }

type result = {
  outward : (string, Effect_set.t) Hashtbl.t;
      (** full effect set of each node, pre-mask *)
  rounds : int;  (** fixpoint iterations until stable (for reporting) *)
}

let effects r id =
  Option.value (Hashtbl.find_opt r.outward id) ~default:Effect_set.empty

(** What a caller of [id] inherits: outward effects minus the node's
    forgiven mask; non-nodes fall back to the extern oracle. *)
let visible t r ~extern id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> Effect_set.diff (effects r id) n.forgiven
  | None -> extern id

(** Iterate [out(n) = seed(n) ∪ ⋃ visible(callee)] to the least
    fixpoint.  The lattice is a bounded powerset and the step function
    is a join of monotone maps, so this terminates in at most
    [|classes| · |nodes|] rounds; in practice a handful. *)
let fixpoint ~extern t =
  let out = Hashtbl.create (Hashtbl.length t.nodes * 2 + 1) in
  Hashtbl.iter (fun id n -> Hashtbl.replace out id n.seed) t.nodes;
  let visible_now id =
    match Hashtbl.find_opt t.nodes id with
    | Some n ->
        Effect_set.diff
          (Option.value (Hashtbl.find_opt out id) ~default:Effect_set.empty)
          n.forgiven
    | None -> extern id
  in
  let rounds = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr rounds;
    Hashtbl.iter
      (fun id n ->
        let cur = Hashtbl.find out id in
        let next =
          List.fold_left
            (fun acc (c, mask) ->
              Effect_set.union acc (Effect_set.diff (visible_now c) mask))
            cur n.calls
        in
        if not (Effect_set.equal next cur) then begin
          Hashtbl.replace out id next;
          changed := true
        end)
      t.nodes
  done;
  { outward = out; rounds = !rounds }
