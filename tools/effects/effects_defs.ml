(** Definition discovery: turns a loaded [.cmt] unit into analysis
    nodes.

    Nodes are
    - every toplevel [let] (including inside nested modules, prefixed
      [Lib.Module.Sub.name]), and
    - every *named local function* ([let f = fun …] anywhere in a
      toplevel body): naming them keeps intra-module helper calls
      ([touch] → [sync_top]) resolved instead of collapsing to opaque
      higher-order calls, and it is what lets hot-path contracts land
      on closures like [Alg_fast.touch] that never escape as toplevel
      values.

    Also collected per module:
    - local module aliases ([module Heap = Ccache_util.Indexed_heap]):
      the typedtree records uses as [Heap.create], so call paths are
      expanded through this map before they become graph keys;
    - the set of toplevel value idents — the "module-level mutable
      state" universe for the global-write effect class.

    Contract and masking attributes (read from [vb_attributes], which
    dune's [-bin-annot] preserves):
    - [\[@@effects.pure\]] / [\[@@effects.no_alloc\]] /
      [\[@@effects.deterministic\]] — declared contracts;
    - [\[@@effects.amortized_alloc\]] — callers do not inherit [alloc]
      (amortised growth paths);
    - [\[@@effects.cold\]] — callers do not inherit [alloc]/[io]
      (unconditional error paths);
    - [\[@@effects.forgive "cls…"\]] — explicit caller-side mask (the
      sanctioned [Ccache_obs.Clock] sinks forgive [time]). *)

open Typedtree

type contract = Pure | No_alloc | Deterministic

let contract_name = function
  | Pure -> "pure"
  | No_alloc -> "no_alloc"
  | Deterministic -> "deterministic"

(** Effect classes a contract forbids. *)
let forbidden = function
  | Pure ->
      Effect_set.of_list [ Time; Rand; Io; Gwrite; Spawn ]
  | No_alloc -> Effect_set.of_list [ Alloc ]
  | Deterministic -> Effect_set.of_list [ Time; Rand; Spawn ]

type def = {
  id : string;
  source : string;
  loc : Location.t;
  contracts : contract list;
  forgiven : Effect_set.t;
  params : (string, unit) Hashtbl.t;  (** [Ident.unique_name] of formals *)
  bodies : expression list;  (** body with outer lambda layers stripped *)
  toplevel : bool;
  arrow : bool;
      (** a function (lambda, or function-typed alias): callers inherit
          its effects.  Non-arrow bindings are plain values — their
          recorded effects happened once at module initialisation, so a
          mere reference must not re-charge them to the reader. *)
}

type modinfo = {
  unit_ : Cmt_load.unit_;
  defs : def list;
  aliases : (string, string) Hashtbl.t;
      (** local module name → canonical path prefix *)
  globals : (string, unit) Hashtbl.t;
      (** [Ident.unique_name] of toplevel values (gwrite targets) *)
  locals : (string, string) Hashtbl.t;
      (** [Ident.unique_name] → node id, every registered def *)
}

(* ---- attribute payloads ---- *)

let string_payload (a : Parsetree.attribute) =
  match a.attr_payload with
  | PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _;
        };
      ] ->
      Some s
  | _ -> None

let parse_attrs (attrs : Parsetree.attributes) =
  List.fold_left
    (fun (contracts, forgiven) (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "effects.pure" -> (Pure :: contracts, forgiven)
      | "effects.no_alloc" -> (No_alloc :: contracts, forgiven)
      | "effects.deterministic" -> (Deterministic :: contracts, forgiven)
      | "effects.amortized_alloc" ->
          (contracts, Effect_set.add forgiven Effect_set.Alloc)
      | "effects.cold" ->
          ( contracts,
            Effect_set.union forgiven
              (Effect_set.of_list [ Effect_set.Alloc; Effect_set.Io ]) )
      | "effects.forgive" -> (
          match string_payload a with
          | Some spec -> (
              match Effect_set.parse spec with
              | Ok s -> (contracts, Effect_set.union forgiven s)
              | Error cls ->
                  Printf.ksprintf failwith
                    "[@@effects.forgive]: unknown effect class %S" cls)
          | None -> (contracts, forgiven))
      | _ -> (contracts, forgiven))
    ([], Effect_set.empty) attrs

(** Classes masked inside an expression by [\[@effects.allow "cls…"\]]. *)
let allow_mask (attrs : Parsetree.attributes) =
  List.fold_left
    (fun acc (a : Parsetree.attribute) ->
      if a.attr_name.txt = "effects.allow" then
        match string_payload a with
        | Some spec -> (
            match Effect_set.parse spec with
            | Ok s -> Effect_set.union acc s
            | Error cls ->
                Printf.ksprintf failwith
                  "[@effects.allow]: unknown effect class %S" cls)
        | None -> acc
      else acc)
    Effect_set.empty attrs

(* ---- pattern idents ---- *)

let pat_idents : type k. k general_pattern -> Ident.t list =
 fun p ->
  let acc = ref [] in
  let open Tast_iterator in
  let it =
    {
      default_iterator with
      pat =
        (fun (type k2) it (p : k2 general_pattern) ->
          (match p.pat_desc with
          | Tpat_var (id, _) -> acc := id :: !acc
          | Tpat_alias (_, id, _) -> acc := id :: !acc
          | _ -> ());
          default_iterator.pat it p);
    }
  in
  it.pat it p;
  !acc

(** Strip the outer lambda layers of a definition: collect formal
    idents, return the real bodies (a multi-clause [function] yields
    one body per clause, plus guards). *)
let strip_function e =
  let params = Hashtbl.create 8 in
  let add id = Hashtbl.replace params (Ident.unique_name id) () in
  let rec go e =
    match e.exp_desc with
    | Texp_function { param; cases; _ } -> (
        add param;
        List.iter (fun c -> List.iter add (pat_idents c.c_lhs)) cases;
        match cases with
        | [ { c_guard = None; c_rhs; _ } ] -> go c_rhs
        | _ ->
            List.concat_map
              (fun c -> Option.to_list c.c_guard @ [ c.c_rhs ])
              cases)
    | _ -> [ e ]
  in
  let bodies = go e in
  (params, bodies)

let is_function e =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* The single ident bound by a [let name = ...] binding.  A plain
   binding is [Tpat_var]; a constrained one ([let name : t = ...])
   elaborates to [Tpat_alias] over the coerced pattern, with the
   constraint in [pat_extra] — both name exactly one value. *)
let binding_ident (p : pattern) =
  match p.pat_desc with
  | Tpat_var (id, { txt = name; _ }) -> Some (id, name)
  | Tpat_alias (_, id, { txt = name; _ }) -> Some (id, name)
  | _ -> None

(* ---- module walk ---- *)

let collect (unit_ : Cmt_load.unit_) : modinfo =
  let aliases = Hashtbl.create 8 in
  let globals = Hashtbl.create 32 in
  let locals = Hashtbl.create 64 in
  let taken = Hashtbl.create 64 in
  let defs = ref [] in
  let fresh_id base =
    match Hashtbl.find_opt taken base with
    | None ->
        Hashtbl.replace taken base 1;
        base
    | Some n ->
        Hashtbl.replace taken base (n + 1);
        Printf.sprintf "%s#%d" base (n + 1)
  in
  let canonical_path p =
    let name = Path.name p in
    match String.index_opt name '.' with
    | None -> (
        match Hashtbl.find_opt aliases name with
        | Some c -> c
        | None -> Cmt_load.canonical_modname name)
    | Some i ->
        let head = String.sub name 0 i in
        let rest = String.sub name i (String.length name - i) in
        let head =
          match Hashtbl.find_opt aliases head with
          | Some c -> c
          | None -> Cmt_load.canonical_modname head
        in
        head ^ rest
  in
  let register ~toplevel ~prefix (vb : value_binding) id name =
    let node_id = fresh_id (prefix ^ "." ^ name) in
    Hashtbl.replace locals (Ident.unique_name id) node_id;
    if toplevel then Hashtbl.replace globals (Ident.unique_name id) ();
    let contracts, forgiven = parse_attrs vb.vb_attributes in
    let params, bodies = strip_function vb.vb_expr in
    let arrow =
      Hashtbl.length params > 0
      ||
      match Types.get_desc vb.vb_expr.exp_type with
      | Types.Tarrow _ -> true
      | _ -> false
    in
    defs :=
      {
        id = node_id;
        source = unit_.source;
        loc = vb.vb_loc;
        contracts = List.rev contracts;
        forgiven;
        params;
        bodies;
        toplevel;
        arrow;
      }
      :: !defs
  in
  (* named local functions (and any annotated local binding) become
     nodes of their own; module prefix only, so contract targets read
     [Lib.Module.fn] *)
  let register_locals ~prefix (vb : value_binding) =
    let open Tast_iterator in
    let it =
      {
        default_iterator with
        value_binding =
          (fun it vb ->
            (match binding_ident vb.vb_pat with
            | Some (id, name) ->
                let contracts, _ = parse_attrs vb.vb_attributes in
                if is_function vb.vb_expr || contracts <> [] then
                  register ~toplevel:false ~prefix vb id name
            | None -> ());
            default_iterator.value_binding it vb);
      }
    in
    it.expr it vb.vb_expr
  in
  let rec walk_structure prefix (str : structure) =
    List.iter
      (fun (item : structure_item) ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match binding_ident vb.vb_pat with
                | Some (id, name) ->
                    register ~toplevel:true ~prefix vb id name;
                    register_locals ~prefix vb
                | None -> ())
              vbs
        | Tstr_module mb -> walk_module prefix mb
        | Tstr_recmodule mbs -> List.iter (walk_module prefix) mbs
        | _ -> ())
      str.str_items
  and walk_module prefix (mb : module_binding) =
    match (mb.mb_id, mb.mb_name.txt) with
    | Some _, Some name -> (
        let rec unwrap (me : module_expr) =
          match me.mod_desc with
          | Tmod_constraint (me, _, _, _) -> unwrap me
          | d -> d
        in
        match unwrap mb.mb_expr with
        | Tmod_ident (p, _) -> Hashtbl.replace aliases name (canonical_path p)
        | Tmod_structure s -> walk_structure (prefix ^ "." ^ name) s
        | _ -> ())
    | _ -> ()
  in
  walk_structure unit_.modname unit_.structure;
  { unit_; defs = List.rev !defs; aliases; globals; locals }
