(** Contract evaluation over the fixpoint results.

    Four rule families, all reported as {!Tool_report.finding}s:

    - [contract-pure] / [contract-no_alloc] / [contract-deterministic]:
      a declared contract whose forbidden classes intersect the node's
      outward effect set;
    - [contract-missing]: a hot-path node from the required table below
      exists but does not declare (at least) the listed contracts — or
      no longer exists at all, which usually means a rename silently
      dropped it out of checking;
    - [direct-clock]: a node other than the sanctioned sink reads the
      clock *directly* (seeded [time], as opposed to inheriting it):
      [Ccache_obs.Clock.wall] is the single place in the tree allowed
      to call [Unix.gettimeofday] and friends;
    - [pool-task-*]: effects reachable from a closure handed to
      [Domain_pool]: [time]/[rand] make cell results depend on
      scheduling ([pool-task-effects]), transitive writes to module
      state that is not a sanctioned sink race across domains
      ([pool-task-global-write]), and direct mutation of idents
      captured from the enclosing scope defeats the pool's
      determinism-by-isolation design ([pool-task-capture]). *)

open Effects_defs

(** The hot-path nodes that MUST carry contracts (the per-request work
    of the fast ALG-DISCRETE stack).  Checking is two-sided: the
    declaration must exist, and the fixpoint must prove it. *)
let required : (string * contract list) list =
  [
    ("Ccache_sim.Engine.Step.step", [ No_alloc; Deterministic ]);
    ("Ccache_serve.Shard.step_batch", [ No_alloc; Deterministic ]);
    ("Ccache_core.Alg_fast.touch", [ No_alloc; Deterministic ]);
    ("Ccache_core.Alg_fast.evict", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.set", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.add", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.remove", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.update", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.priority", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.mem", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.min_key_exn", [ No_alloc; Deterministic ]);
    ("Ccache_util.Indexed_heap.min_prio_exn", [ No_alloc; Deterministic ]);
    ("Ccache_util.Int_tbl.set", [ No_alloc; Deterministic ]);
    ("Ccache_util.Int_tbl.remove", [ No_alloc; Deterministic ]);
    ("Ccache_util.Int_tbl.mem", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Page.pack", [ Pure; No_alloc ]);
    ("Ccache_trace.Page.unpack", [ Pure; No_alloc ]);
    (* the zero-copy trace substrate: per-request iteration and the
       dense (flat-array) index lookups behind every policy decision *)
    ("Ccache_trace.Trace.request", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace.Index.interval_index", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace.Index.next_use", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace.Index.prev_use", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace.Index.distinct_upto", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace.Index.total_requests", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace.Index.is_last_request", [ No_alloc; Deterministic ]);
    ("Ccache_trace.Trace_binary.dense_at", [ Deterministic ]);
  ]

(** Nodes allowed to seed [time] directly. *)
let sanctioned_time = [ "Ccache_obs.Clock.wall" ]

let rules : (string * string) list =
  [
    ("contract-pure", "declared [@@effects.pure] but effects reach the node");
    ("contract-no_alloc", "declared [@@effects.no_alloc] but allocation reaches the node");
    ("contract-deterministic",
     "declared [@@effects.deterministic] but nondeterminism reaches the node");
    ("contract-missing", "hot-path node lacks its required effect contract");
    ("direct-clock", "direct clock read outside the sanctioned Clock.wall sink");
    ("pool-task-effects", "Domain_pool task reaches time or randomness");
    ("pool-task-global-write", "Domain_pool task writes unsanctioned module state");
    ("pool-task-capture", "Domain_pool task mutates captured local state");
  ]

let finding ~(loc : Location.t) ~source ~rule msg : Tool_report.finding =
  let p = loc.loc_start in
  {
    file = source;
    line = (if p.pos_lnum > 0 then p.pos_lnum else 1);
    col = (if p.pos_cnum >= p.pos_bol then p.pos_cnum - p.pos_bol else 0);
    rule;
    msg;
  }

(** Transitive effect set of one pool task closure. *)
let pool_task_effects graph result ~extern (site : Effects_extract.pool_site) =
  List.fold_left
    (fun acc (callee, mask) ->
      Effect_set.union acc
        (Effect_set.diff
           (Effects_graph.visible graph result ~extern callee)
           mask))
    site.Effects_extract.site_seed site.Effects_extract.site_calls

(* [check_required]: verify the {!required} hot-path table (off for
   runs over trees that legitimately do not contain those nodes, e.g.
   the test fixture library). *)
let check ~check_required ~(defs : (string, def) Hashtbl.t)
    ~(graph : Effects_graph.t) ~(result : Effects_graph.result) ~extern
    ~(pool_sites : Effects_extract.pool_site list) : Tool_report.finding list =
  let out = ref [] in
  let add f = out := f :: !out in
  let each_def f =
    Hashtbl.fold (fun _ d l -> d :: l) defs []
    |> List.sort (fun a b -> String.compare a.id b.id)
    |> List.iter f
  in
  (* declared contracts vs fixpoint *)
  each_def (fun d ->
      let outward = Effects_graph.effects result d.id in
      List.iter
        (fun c ->
          let bad = Effect_set.inter (forbidden c) outward in
          if not (Effect_set.is_empty bad) then
            add
              (finding ~loc:d.loc ~source:d.source
                 ~rule:("contract-" ^ contract_name c)
                 (Printf.sprintf "%s declares %s but reaches {%s}" d.id
                    (contract_name c) (Effect_set.to_string bad))))
        d.contracts);
  (* required hot-path contracts are actually declared *)
  if check_required then
    List.iter
    (fun (id, needed) ->
      match Hashtbl.find_opt defs id with
      | None ->
          add
            {
              Tool_report.file = "EFFECTS";
              line = 1;
              col = 0;
              rule = "contract-missing";
              msg =
                Printf.sprintf
                  "hot-path node %s not found in the call graph (renamed or \
                   no longer compiled?)"
                  id;
            }
      | Some d ->
          List.iter
            (fun c ->
              if not (List.mem c d.contracts) then
                add
                  (finding ~loc:d.loc ~source:d.source ~rule:"contract-missing"
                     (Printf.sprintf "%s must declare [@@effects.%s]" id
                        (contract_name c))))
            needed)
    required;
  (* sanctioned clock sink.  A *direct* read is a [time] class arriving
     at the node itself: either seeded primitively or through an edge
     to a time-classified extern (clock reads always enter the graph as
     extern calls — [Unix.gettimeofday] has no node).  Inheriting
     [time] from another node is not direct; only the sink itself is
     held to this rule. *)
  let reads_clock_directly (n : Effects_graph.node) =
    Effect_set.mem n.Effects_graph.seed Effect_set.Time
    || List.exists
         (fun (callee, mask) ->
           Effects_graph.find_opt graph callee = None
           && Effect_set.mem
                (Effect_set.diff (extern callee) mask)
                Effect_set.Time)
         n.Effects_graph.calls
  in
  each_def (fun d ->
      match Effects_graph.find_opt graph d.id with
      | Some n
        when reads_clock_directly n && not (List.mem d.id sanctioned_time) ->
          add
            (finding ~loc:d.loc ~source:d.source ~rule:"direct-clock"
               (Printf.sprintf
                  "%s reads the clock directly; route it through \
                   Ccache_obs.Clock.wall"
                  d.id))
      | _ -> ());
  (* Domain_pool task closures *)
  List.iter
    (fun (site : Effects_extract.pool_site) ->
      let effs = pool_task_effects graph result ~extern site in
      let flag rule cls what =
        if Effect_set.mem effs cls then
          add
            (finding ~loc:site.site_loc ~source:site.site_source ~rule
               (Printf.sprintf "task closure passed to Domain_pool.%s in %s %s"
                  site.site_fn site.site_in what))
      in
      flag "pool-task-effects" Effect_set.Time "reads the clock";
      flag "pool-task-effects" Effect_set.Rand "consumes ambient randomness";
      flag "pool-task-global-write" Effect_set.Gwrite
        "writes unsanctioned module-level state";
      if site.site_captured <> [] then
        add
          (finding ~loc:site.site_loc ~source:site.site_source
             ~rule:"pool-task-capture"
             (Printf.sprintf
                "task closure passed to Domain_pool.%s in %s mutates captured \
                 state: %s"
                site.site_fn site.site_in
                (String.concat ", " site.site_captured))))
    pool_sites;
  List.sort Tool_report.compare_finding !out
